#pragma once
// The redesigned public facade: canopus::Pipeline.
//
// Before this facade the public surface had grown organically — two
// refactor_and_write overloads, a many-argument ProgressiveReader
// constructor, exceptions on some paths and RefineStatus + counters on
// others. Pipeline consolidates it: option-struct requests, one
// Status-returning entry point per direction, and one place
// (canopus::Options, core/options.hpp) where concurrency, fault policy,
// caching, serving, and the cluster shape are configured instead of growing
// every signature.
//
//   storage::StorageHierarchy tiers({...});
//   Pipeline pipeline(tiers);
//
//   WriteRequest wreq;                       // option struct, designated-init
//   wreq.path = "run.bp"; wreq.var = "dpot";
//   wreq.mesh = &mesh; wreq.values = &values;
//   wreq.config.levels = 3;
//   Status ws = pipeline.write(wreq);
//
//   ReadRequest rreq;
//   rreq.path = "run.bp"; rreq.var = "dpot";
//   rreq.target_level = 0;                   // full accuracy
//   ReadResult data;
//   Status rs = pipeline.read(rreq, &data);  // rs.degraded => partial accuracy
//
// Error-reporting invariant (core/status.hpp, DESIGN.md §14): every public
// entry point on Pipeline and ReadSession returns a Status; exceptions from
// the layers underneath are mapped at this boundary and never escape.
//
// The facade is also the cluster control plane: attach_fabric() plugs a
// fabric::Fabric in, after which attach_node()/drain_node()/detach_node()/
// rebalance() grow and shrink the topology at runtime while queries keep
// being served, and topology() snapshots it (core/topology.hpp). Those
// members are defined in the fabric module (src/fabric/pipeline_fabric.cpp),
// mirroring how submit_query() lives in serve — core itself references
// neither module's symbols.
//
// The pre-facade entry points (core::refactor_and_write overloads and the
// core::ProgressiveReader constructor) remain as thin deprecated wrappers
// around the same engine for source compatibility; new code should come in
// through Pipeline.

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "cache/block_cache.hpp"
#include "core/config.hpp"
#include "core/geometry_cache.hpp"
#include "core/options.hpp"
#include "core/progressive_reader.hpp"
#include "core/refactorer.hpp"
#include "core/status.hpp"
#include "core/topology.hpp"
#include "obs/observability.hpp"
#include "serve/serve_config.hpp"
#include "storage/hierarchy.hpp"

namespace canopus {

// The deadline-aware query scheduler (src/serve) plugs into the facade via
// Pipeline::submit_query(). Only forward declarations here: the serve module
// links against core, so the member functions touching these types are
// defined in src/serve/pipeline_serve.cpp and core itself never references
// serve symbols.
namespace serve {
struct QueryRequest;
struct QueryResult;
class QueryScheduler;
}  // namespace serve

// Same pattern for the cluster fabric: the control-plane members touching
// fabric::Fabric are defined in src/fabric/pipeline_fabric.cpp.
namespace fabric {
class Fabric;
}  // namespace fabric

// And for workload-adaptive tiering: the members touching
// tiering::TierAdvisor are defined in src/tiering/pipeline_tiering.cpp.
namespace tiering {
class TierAdvisor;
struct TieringReport;
}  // namespace tiering

/// Deprecated spelling of canopus::Options, kept so pre-PR-8 call sites
/// (designated initializers over the same member names) compile unchanged.
/// New code should spell it canopus::Options; see README.md's migration
/// table.
using PipelineOptions = Options;

/// Everything one refactor-and-write needs. Provide either (mesh, values) —
/// the full decimate/delta/compress/place pipeline — or a prebuilt cascade
/// to amortize decimation across a campaign.
struct WriteRequest {
  std::string path;  // container name, e.g. "run.bp"
  std::string var;   // variable name, e.g. "dpot"
  const mesh::TriMesh* mesh = nullptr;
  const mesh::Field* values = nullptr;
  const mesh::Cascade* cascade = nullptr;
  /// Refactoring knobs. `config.parallel` is ignored: concurrency comes from
  /// canopus::Options so it is configured once per pipeline, not per call.
  core::RefactorConfig config;
};

struct WriteResult {
  core::RefactorReport report;
};

/// Everything one progressive read needs. By default the variable is
/// restored to full accuracy; `target_level`, `rmse_threshold`, and `roi`
/// select the elastic alternatives.
struct ReadRequest {
  std::string path;
  std::string var;
  /// Refine until this accuracy level (0 = full accuracy, N-1 = base only).
  std::uint32_t target_level = 0;
  /// When set, stop refining once the RMS change between consecutive levels
  /// drops below this threshold (Section III-E automated termination);
  /// overrides target_level.
  std::optional<double> rmse_threshold;
  /// When set, perform one focused refinement fetching only the delta chunks
  /// intersecting this region (Section III-E ROI retrieval); overrides
  /// target_level and rmse_threshold.
  std::optional<mesh::Aabb> roi;
  /// Campaign-lifetime geometry (meshes, mappings, spatial orders); must
  /// outlive the call. Without it geometry is fetched on demand and charged
  /// to the timings.
  const core::GeometryCache* geometry = nullptr;
};

struct ReadResult {
  mesh::Field values;    // restored field at `level`
  mesh::TriMesh mesh;    // its geometry
  std::uint32_t level = 0;
  core::RetrievalTimings timings;  // includes the base retrieval
  core::RefineStatus refine_status = core::RefineStatus::kOk;
};

/// One concurrent progressive-read session, created by
/// Pipeline::open_session(). Sessions wrap a ProgressiveReader behind the
/// facade's Status-returning contract (refine() never throws) and — unlike
/// Pipeline::open()'s raw readers — share the pipeline's session thread pool
/// and its block cache, so K sessions refining the same variable trigger one
/// tier fetch and one decode per chunk between them.
///
/// A session is single-threaded (one session per analytics client); many
/// sessions may run concurrently against the same Pipeline.
class ReadSession {
 public:
  ReadSession(const ReadSession&) = delete;
  ReadSession& operator=(const ReadSession&) = delete;

  /// One refinement step. Degradation (delta unreadable after retries +
  /// replica fallback) comes back as a degraded Status, not an exception.
  Status refine();
  /// Refines until `level` (inclusive) or a step degrades.
  Status refine_to(std::uint32_t level);
  /// Refines until the inter-level RMS change drops below `rmse_threshold`,
  /// full accuracy is reached, or a step degrades.
  Status refine_until(double rmse_threshold);

  const mesh::Field& values() const { return reader_->values(); }
  const mesh::TriMesh& mesh() const { return reader_->current_mesh(); }
  std::uint32_t level() const { return reader_->current_level(); }
  bool at_full_accuracy() const { return reader_->at_full_accuracy(); }
  std::size_t level_count() const { return reader_->level_count(); }
  const core::RetrievalTimings& timings() const { return reader_->cumulative(); }

  /// Escape hatch to the underlying reader (refine_region, last_status, ...).
  core::ProgressiveReader& reader() { return *reader_; }

 private:
  friend class Pipeline;
  explicit ReadSession(std::unique_ptr<core::ProgressiveReader> reader)
      : reader_(std::move(reader)) {}

  std::unique_ptr<core::ProgressiveReader> reader_;
};

class Pipeline {
 public:
  /// Borrows `hierarchy` (must outlive the pipeline). Throws canopus::Error
  /// when `options` fail validation (Options::validate()); use load() for a
  /// Status-returning construction path.
  explicit Pipeline(storage::StorageHierarchy& hierarchy,
                    Options options = {});
  /// Takes ownership of `hierarchy`.
  explicit Pipeline(storage::StorageHierarchy&& hierarchy,
                    Options options = {});

  /// Builds a pipeline from an XML RuntimeConfig file: configured hierarchy
  /// (tiers, placement, faults, retry), observability, cache, serve, io —
  /// the Status-returning factory the error-reporting invariant asks for
  /// (kNotFound for a missing file, kInvalidArgument for a malformed or
  /// inconsistent config).
  static Status load(const std::string& config_path,
                     std::unique_ptr<Pipeline>* pipeline);
  static Status load(const core::RuntimeConfig& config,
                     std::unique_ptr<Pipeline>* pipeline);

  /// Deprecated throwing factories, kept for source compatibility: prefer
  /// load(), which returns a Status instead of throwing on a bad config.
  static Pipeline from_config(const core::RuntimeConfig& config);
  static Pipeline from_config_file(const std::string& path);

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  storage::StorageHierarchy& hierarchy() { return *hierarchy_; }
  const storage::StorageHierarchy& hierarchy() const { return *hierarchy_; }
  const Options& options() const { return options_; }

  /// Refactors and writes one variable. Never throws: failures come back as
  /// a Status (kInvalidArgument, kCapacity, kIoError, ...).
  Status write(const WriteRequest& request, WriteResult* result = nullptr);

  /// Retrieves one variable at the requested accuracy. Never throws. A
  /// degraded Status (usable() but not ok()) means faults stopped refinement
  /// early and `result` holds the last good level.
  Status read(const ReadRequest& request, ReadResult* result);

  /// Opens a ProgressiveReader at base accuracy for step-wise refinement
  /// (interactive analytics, ROI zooming). The reader borrows the pipeline's
  /// hierarchy and inherits its concurrency options; request.target_level /
  /// rmse_threshold / roi are ignored here.
  Status open(const ReadRequest& request,
              std::unique_ptr<core::ProgressiveReader>* reader);

  /// Opens a concurrent read session at base accuracy. Sessions share the
  /// pipeline's session thread pool (one pool for all sessions, sized by
  /// Options::parallel.threads) and the hierarchy's block cache when one is
  /// configured, so N sessions over the same products cost ~one tier fetch +
  /// one decode per block instead of N. request.target_level /
  /// rmse_threshold / roi are ignored here; refine from the session instead.
  Status open_session(const ReadRequest& request,
                      std::unique_ptr<ReadSession>* session);

  /// Submits one deadline/priority query to the pipeline's QueryScheduler
  /// (serving-under-load entry point: bounded admission queue, per-level
  /// cost-model planning, elastic degradation). Blocks until the query
  /// completes, degrades, or is shed; never throws. kOverloaded means the
  /// admission queue was full and no work was done; a degraded Status means
  /// the deadline (or a fault) stopped refinement above the target level and
  /// `result` holds the coarser answer. Defined in the serve module
  /// (src/serve/pipeline_serve.cpp); see serve/query_scheduler.hpp.
  Status submit_query(const serve::QueryRequest& request,
                      serve::QueryResult* result);

  /// The pipeline's scheduler, created on first use from Options::serve (or
  /// defaults); never null. Use for non-blocking submission (submit()),
  /// stats, and the pause/resume admission gate.
  serve::QueryScheduler& query_scheduler();

  // --- Adaptive tiering (defined in src/tiering/pipeline_tiering.cpp). ------

  /// The pipeline's TierAdvisor, created on first use from Options::tiering
  /// (or defaults); never null. On creation it watches the pipeline's
  /// hierarchy, follows the attached fabric (now and on later attaches), is
  /// handed to the query scheduler as its predicted-residency source, and —
  /// when Options::tiering.enabled — starts its background policy thread.
  /// query_scheduler() creates it implicitly when tiering is enabled.
  tiering::TierAdvisor& tier_advisor();

  /// Counter snapshot of the advisor (ticks, promotions, demotions, ...);
  /// creates the advisor on first use like tier_advisor().
  tiering::TieringReport tiering_report();

  // --- Cluster control plane (defined in src/fabric/pipeline_fabric.cpp). ---

  /// Plugs a serving fabric into the facade (borrowed; must outlive the
  /// pipeline, pass nullptr to unplug). Queries submitted after this route
  /// across the fabric's nodes (the scheduler is notified, whether it exists
  /// yet or not), and the topology entry points below become live.
  Status attach_fabric(fabric::Fabric* fabric);

  /// The attached fabric, or nullptr. (Named serving_fabric because a member
  /// named `fabric` would shadow namespace canopus::fabric in class scope.)
  fabric::Fabric* serving_fabric() const;

  /// Grows the cluster by one node; `*id` (optional) receives its stable
  /// node id. Only the chunks whose directory owner changed migrate, in the
  /// background — queries are served throughout (old owner until each
  /// chunk's cutover). kInvalidArgument when no fabric is attached.
  Status attach_node(std::uint32_t* id = nullptr);

  /// Moves every primary chunk off node `id` (copy → cutover → retire,
  /// replicas repaired onto the new ring successors) while the node keeps
  /// serving; the node stays attached. kInvalidArgument for an unknown,
  /// detached, or last-active node.
  Status drain_node(std::uint32_t id);

  /// drain_node() + removal from service: after the drain completes the node
  /// no longer routes, serves, or holds data. Queries planned after this
  /// never touch it.
  Status detach_node(std::uint32_t id);

  /// Re-plans chunk ownership against the current topology (e.g. after
  /// residency changes) and migrates synchronously.
  Status rebalance();

  /// Joins any in-flight background migration (after attach_node()); returns
  /// kOk when the migration moved every planned chunk, kRetried when a newer
  /// topology change superseded it, kIoError/kCapacity when moves failed.
  Status wait_for_rebalance();

  /// Point-in-time cluster snapshot (epoch, per-node occupancy and liveness,
  /// migration count). Single-node pipelines (no fabric attached) report one
  /// implicit node over the pipeline's own hierarchy.
  Topology topology() const;

  /// The cache attached to the hierarchy, or nullptr (for stats in benches).
  cache::BlockCache* block_cache() const { return hierarchy_->block_cache(); }

  /// Writes the Chrome trace to the installed observability sink, if any.
  /// `*path_out` (optional) receives the path written ("" when no sink is
  /// configured — that is kOk: nothing to flush is not a failure).
  Status flush_trace(std::string* path_out = nullptr);

  /// Deprecated spelling of flush_trace(): returns the path written instead
  /// of a Status, hiding sink errors.
  std::string flush_observability();

 private:
  Status run_read(const ReadRequest& request, ReadResult* result);
  /// Shared ctor tail: validation, observability, retry, faults, cache,
  /// session pool.
  void apply_options();

  std::optional<storage::StorageHierarchy> owned_;
  storage::StorageHierarchy* hierarchy_;
  Options options_;
  /// One worker pool shared by every ReadSession (sized by
  /// options_.parallel.threads; sessions fall back to the global pool when
  /// no thread count is pinned).
  std::optional<util::ThreadPool> session_pool_;
  /// Lazily created by tier_advisor() (definition lives in the tiering
  /// module). Declared before scheduler_ so the scheduler — which holds a
  /// raw pointer to the advisor — is destroyed first. shared_ptr's
  /// type-erased deleter makes the incomplete type safe to destroy from
  /// core TUs.
  std::shared_ptr<tiering::TierAdvisor> advisor_;
  std::once_flag advisor_once_;
  /// Lazily created by query_scheduler() (definition lives in the serve
  /// module). Declared after session_pool_ so the scheduler's workers join
  /// before the pool they execute on is torn down. shared_ptr's type-erased
  /// deleter makes the incomplete type safe to destroy from core TUs.
  std::shared_ptr<serve::QueryScheduler> scheduler_;
  std::once_flag scheduler_once_;
  /// The attached fabric plus the cross-module notification hooks. Each hook
  /// is a type-erased callback installed by one module and invoked by
  /// another (scheduler↔fabric, advisor↔fabric, scheduler↔advisor), so no
  /// module needs another's types; fabric_mu_ orders them all. New hook
  /// installers compose with (wrap) any previously installed callback.
  mutable std::mutex fabric_mu_;
  fabric::Fabric* fabric_ = nullptr;
  std::function<void(fabric::Fabric*)> on_fabric_change_;
  tiering::TierAdvisor* advisor_raw_ = nullptr;
  std::function<void(tiering::TierAdvisor*)> on_advisor_change_;
};

}  // namespace canopus
