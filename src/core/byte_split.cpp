#include "core/byte_split.hpp"

#include <cmath>
#include <cstring>
#include <numeric>

#include "util/assert.hpp"

namespace canopus::core {

ByteSplit byte_split(std::span<const double> values,
                     std::span<const std::uint8_t> group_bytes) {
  const auto total = std::accumulate(group_bytes.begin(), group_bytes.end(), 0);
  CANOPUS_CHECK(total == 8, "byte_split: group widths must sum to 8");
  for (auto b : group_bytes) {
    CANOPUS_CHECK(b >= 1, "byte_split: empty group");
  }

  ByteSplit out;
  out.count = values.size();
  out.group_bytes.assign(group_bytes.begin(), group_bytes.end());
  out.planes.resize(group_bytes.size());

  // Byte significance: index 0 = most significant byte of the double
  // (little-endian in memory, so memory byte 7).
  std::size_t sig_offset = 0;
  for (std::size_t g = 0; g < group_bytes.size(); ++g) {
    auto& plane = out.planes[g];
    plane.resize(values.size() * group_bytes[g]);
    for (unsigned b = 0; b < group_bytes[g]; ++b) {
      const unsigned mem_byte = 7 - static_cast<unsigned>(sig_offset + b);
      for (std::size_t i = 0; i < values.size(); ++i) {
        std::uint64_t bits;
        std::memcpy(&bits, &values[i], sizeof(bits));
        plane[b * values.size() + i] =
            static_cast<std::byte>((bits >> (8 * mem_byte)) & 0xFF);
      }
    }
    sig_offset += group_bytes[g];
  }
  return out;
}

std::vector<double> byte_merge(const ByteSplit& split, std::size_t groups_used) {
  CANOPUS_CHECK(groups_used >= 1 && groups_used <= split.group_count(),
                "byte_merge: invalid group count");
  std::vector<std::uint64_t> bits(split.count, 0);
  std::size_t sig_offset = 0;
  for (std::size_t g = 0; g < groups_used; ++g) {
    const auto& plane = split.planes[g];
    CANOPUS_CHECK(plane.size() == split.count * split.group_bytes[g],
                  "byte_merge: plane size mismatch");
    for (unsigned b = 0; b < split.group_bytes[g]; ++b) {
      const unsigned mem_byte = 7 - static_cast<unsigned>(sig_offset + b);
      for (std::size_t i = 0; i < split.count; ++i) {
        bits[i] |= static_cast<std::uint64_t>(plane[b * split.count + i])
                   << (8 * mem_byte);
      }
    }
    sig_offset += split.group_bytes[g];
  }
  std::vector<double> out(split.count);
  std::memcpy(out.data(), bits.data(), out.size() * sizeof(double));
  return out;
}

double byte_split_relative_error(std::size_t prefix_bytes) {
  CANOPUS_ASSERT(prefix_bytes >= 2 && prefix_bytes <= 8);
  if (prefix_bytes == 8) return 0.0;
  // Kept mantissa bits after sign (1) + exponent (11): 8*prefix - 12.
  return std::ldexp(1.0, -static_cast<int>(8 * prefix_bytes - 12));
}

}  // namespace canopus::core
