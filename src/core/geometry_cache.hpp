#pragma once
// One-time geometry loading for campaign-style analytics.
//
// Simulation meshes are static across a run: XGC1 writes thousands of dpot
// timesteps over the same mesh. The per-level meshes and restoration
// mappings are therefore campaign-lifetime artifacts — read and deserialized
// once, then shared by every ProgressiveReader that analyzes a timestep.
// Passing a GeometryCache to ProgressiveReader removes geometry I/O from the
// per-read critical path, which is the regime the paper's Figs. 9-11 measure.

#include <string>
#include <vector>

#include "core/types.hpp"
#include "mesh/tri_mesh.hpp"
#include "storage/hierarchy.hpp"

namespace canopus::core {

struct GeometryCache {
  /// meshes[l] is G^l; size = level count.
  std::vector<mesh::TriMesh> meshes;
  /// mappings[l] restores level l from level l+1; size = level count - 1.
  std::vector<VertexMapping> mappings;

  std::size_t level_count() const { return meshes.size(); }

  /// Reads every mesh and mapping block of `var` from the container.
  /// `io_seconds`, when given, receives the simulated one-time read cost.
  static GeometryCache load(storage::StorageHierarchy& hierarchy,
                            const std::string& path, const std::string& var,
                            double* io_seconds = nullptr);
};

}  // namespace canopus::core
