#pragma once
// One-time geometry loading for campaign-style analytics.
//
// Simulation meshes are static across a run: XGC1 writes thousands of dpot
// timesteps over the same mesh. The per-level meshes and restoration
// mappings are therefore campaign-lifetime artifacts — read and deserialized
// once, then shared by every ProgressiveReader that analyzes a timestep.
// Passing a GeometryCache to ProgressiveReader removes geometry I/O from the
// per-read critical path, which is the regime the paper's Figs. 9-11 measure.

#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "mesh/tri_mesh.hpp"
#include "storage/hierarchy.hpp"

namespace canopus::core {

/// Process-wide memoized mesh::spatial_order, keyed by a geometry
/// fingerprint (vertex count, bounds, CRC-32 of the coordinate bytes).
/// Campaign meshes are static across thousands of timesteps, and writer and
/// reader both need the same Morton ordering for every chunked delta level —
/// memoizing here means the O(n log n) sort runs once per distinct mesh per
/// process instead of once per refactor/refine call. Thread-safe; the
/// returned vector is immutable and shared.
std::shared_ptr<const std::vector<mesh::VertexId>> cached_spatial_order(
    const mesh::TriMesh& mesh);

struct GeometryCache {
  /// meshes[l] is G^l; size = level count.
  std::vector<mesh::TriMesh> meshes;
  /// mappings[l] restores level l from level l+1; size = level count - 1.
  std::vector<VertexMapping> mappings;
  /// orders[l] is the Morton ordering of meshes[l], prewarmed by load() via
  /// cached_spatial_order so per-timestep refines never recompute it.
  std::vector<std::shared_ptr<const std::vector<mesh::VertexId>>> orders;

  std::size_t level_count() const { return meshes.size(); }

  /// Morton ordering of level l (from the prewarmed cache).
  const std::vector<mesh::VertexId>& order(std::size_t level) const {
    return *orders[level];
  }

  /// Reads every mesh and mapping block of `var` from the container.
  /// `io_seconds`, when given, receives the simulated one-time read cost.
  static GeometryCache load(storage::StorageHierarchy& hierarchy,
                            const std::string& path, const std::string& var,
                            double* io_seconds = nullptr);
};

}  // namespace canopus::core
