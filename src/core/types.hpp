#pragma once
// Core Canopus types: refactoring configuration and the persisted
// fine-vertex -> coarse-triangle mapping.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mesh/decimate.hpp"
#include "mesh/geometry.hpp"
#include "util/byte_buffer.hpp"

namespace canopus::core {

/// How Estimate(.) (Eq. 2) combines the three coarse-triangle corner values
/// to predict a fine vertex. The paper uses uniform alpha=beta=gamma=1/3 and
/// leaves the optimal form open; the alternatives feed the ablation bench.
enum class EstimateMode : std::uint8_t {
  kUniformThirds = 0,  // paper default
  kBarycentric = 1,    // true barycentric weights of the fine vertex
  kNearestVertex = 2,  // copy the closest corner
};

std::string to_string(EstimateMode mode);
EstimateMode estimate_mode_from_string(const std::string& s);

/// Knobs for the task-based refactor/restore engine, shared by the writer
/// (refactor_and_write) and the reader (ProgressiveReader) and configurable
/// from XML (<threads>N</threads>, <pipeline overlap=".." read-ahead=".."/>).
/// Worker count only changes wall-clock: products and restored fields are
/// bitwise-identical for any `threads` value (commits and reductions are
/// ordered deterministically).
struct ParallelConfig {
  /// Worker threads for parallel sections; 0 = the process-global pool
  /// (hardware concurrency), 1 = a dedicated single worker.
  std::size_t threads = 0;
  /// Writer: overlap level l's mapping+delta computation with level l+1's
  /// compression commit (a single committer serializes placement, so
  /// placement order and phase accounting stay deterministic).
  bool pipeline = true;
  /// Reader: prefetch the next delta level from its (slow) tier while the
  /// current level is being decompressed and applied.
  bool read_ahead = true;
};

/// Everything that controls one refactoring run.
struct RefactorConfig {
  /// Total number of accuracy levels N (>= 1); L^{N-1} is the base.
  std::size_t levels = 3;
  /// Per-level decimation step; cumulative ratio at level l is step^l.
  double step = 2.0;
  /// Edge-collapse options (priority metric, seed).
  mesh::DecimateOptions decimate;
  /// Floating-point codec applied to the base and every delta.
  std::string codec = "zfp";
  /// Absolute error bound handed to the codec for each product.
  double error_bound = 0.0;
  EstimateMode estimate = EstimateMode::kUniformThirds;
  /// Pin products to tiers by level (paper's Fig. 1 layout: base on the
  /// fastest tier, finer deltas further down). When false, every product
  /// takes the generic fastest-fit path.
  bool tiered_placement = true;
  /// Split every delta into this many independently decodable chunks with
  /// per-chunk bounding boxes, enabling focused region-of-interest retrieval
  /// ("reading smaller subsets of high accuracy data", Section III-E).
  /// Chunks are also the unit of parallel encoding/decoding.
  std::uint32_t delta_chunks = 1;
  /// Task-engine knobs for the write pipeline.
  ParallelConfig parallel;

  /// Convenience: sets error_bound so that the *accumulated* restoration
  /// error at full accuracy stays within `total` (codec bounds add once per
  /// product along the base + deltas chain, i.e. `levels` times).
  RefactorConfig& set_total_error_budget(double total) {
    error_bound = total / static_cast<double>(levels);
    return *this;
  }
};

/// Per-chunk vertex ranges and spatial extents of one level's delta,
/// persisted alongside chunked deltas to drive ROI reads.
struct ChunkIndex {
  struct Range {
    std::uint64_t start = 0;  // first fine-vertex index of the chunk
    std::uint64_t count = 0;
    mesh::Aabb bbox;          // extent of those vertices
  };
  std::vector<Range> chunks;

  /// Indices of chunks whose bbox overlaps `roi`.
  std::vector<std::uint32_t> intersecting(const mesh::Aabb& roi) const;

  void serialize(util::ByteWriter& out) const;
  static ChunkIndex deserialize(util::ByteReader& in);
};

/// For every vertex of the fine level: the containing coarse triangle and its
/// barycentric weights there. Stored in BP metadata during refactoring and
/// reused to accelerate restoration (Section III-E2).
struct VertexMapping {
  std::vector<std::uint32_t> triangle;            // coarse triangle per vertex
  std::vector<std::array<double, 3>> weights;     // barycentric weights

  std::size_t size() const { return triangle.size(); }

  /// Rounds weights to float32 precision (w2 re-derived from the affine
  /// constraint). build_mapping applies this before deltas are computed, so
  /// the weights stored on disk are bit-identical to the ones the deltas
  /// assumed — serialization stays exact at half the bytes.
  void quantize_weights();

  void serialize(util::ByteWriter& out) const;
  static VertexMapping deserialize(util::ByteReader& in);
};

}  // namespace canopus::core
