#include "core/pipeline.hpp"

#include <cmath>
#include <exception>
#include <utility>

#include "obs/trace.hpp"
#include "storage/blob_frame.hpp"
#include "storage/tier.hpp"
#include "util/assert.hpp"

namespace canopus {

namespace {

/// Facade shorthand over the shared mapper (core/status.hpp):
/// `not_found_on_error` selects the meaning of a generic canopus::Error —
/// on the open path a missing container or variable surfaces as Error, so
/// kNotFound; elsewhere it is an internal invariant failure.
Status status_from_exception(bool not_found_on_error) {
  return status_from_current_exception(
      not_found_on_error ? StatusCode::kNotFound : StatusCode::kInternal);
}

/// Post-read classification: fold the reader's refine outcome and robustness
/// counters into one Status.
Status status_from_read(core::RefineStatus refine,
                        const core::RetrievalTimings& timings) {
  if (refine == core::RefineStatus::kDegraded) {
    Status s;
    s.code = StatusCode::kDegraded;
    s.degraded = true;
    s.detail = "kept level above the requested accuracy (" +
               std::to_string(timings.degraded_steps) + " degraded step(s))";
    return s;
  }
  if (refine == core::RefineStatus::kRetried || timings.retries > 0 ||
      timings.replica_reads > 0) {
    Status s;
    s.code = StatusCode::kRetried;
    return s;
  }
  return Status::success();
}

}  // namespace

Pipeline::Pipeline(storage::StorageHierarchy& hierarchy, PipelineOptions options)
    : hierarchy_(&hierarchy), options_(std::move(options)) {
  apply_options();
}

Pipeline::Pipeline(storage::StorageHierarchy&& hierarchy, PipelineOptions options)
    : owned_(std::move(hierarchy)),
      hierarchy_(&*owned_),
      options_(std::move(options)) {
  apply_options();
}

void Pipeline::apply_options() {
  // One pass, up front: a bad knob surfaces as a contextual canopus::Error
  // here (or a kInvalidArgument Status through load()) instead of a
  // CANOPUS_CHECK abort deep inside the subsystem it configures.
  options_.validate();
  if (options_.observability.has_value()) obs::install(*options_.observability);
  if (options_.retry.has_value()) hierarchy_->set_retry_policy(*options_.retry);
  if (options_.faults) hierarchy_->attach_fault_injector(options_.faults);
  if (options_.cache.has_value() && hierarchy_->block_cache() == nullptr) {
    hierarchy_->attach_block_cache(
        std::make_shared<cache::BlockCache>(*options_.cache));
  }
  // One pool for all ReadSessions, so K sessions never oversubscribe the
  // machine with K private pools. Plain read()/open() keep their per-reader
  // pools (unchanged single-reader determinism contract).
  if (options_.parallel.threads > 0) {
    session_pool_.emplace(options_.parallel.threads);
  }
}

Pipeline Pipeline::from_config(const core::RuntimeConfig& config) {
  // make_hierarchy() already attaches the configured fault injector and retry
  // policy; config.options() leaves retry/faults unset to avoid re-applying
  // them.
  return Pipeline(config.make_hierarchy(), config.options());
}

Pipeline Pipeline::from_config_file(const std::string& path) {
  return from_config(core::load_config_file(path));
}

Status Pipeline::load(const core::RuntimeConfig& config,
                      std::unique_ptr<Pipeline>* pipeline) {
  if (pipeline == nullptr) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "load: pipeline must not be null");
  }
  try {
    // Pipeline has no move constructor (hierarchy_ points into owned_), so
    // build in place rather than moving from_config's return.
    pipeline->reset(
        new Pipeline(config.make_hierarchy(), config.options()));
    return Status::success();
  } catch (...) {
    // A malformed or inconsistent config is a caller bug, not an internal
    // failure: generic Errors (Options::validate, CANOPUS_CHECKs in the
    // config loader) map to kInvalidArgument.
    return status_from_current_exception(StatusCode::kInvalidArgument);
  }
}

Status Pipeline::load(const std::string& config_path,
                      std::unique_ptr<Pipeline>* pipeline) {
  if (pipeline == nullptr) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "load: pipeline must not be null");
  }
  core::RuntimeConfig config;
  try {
    config = core::load_config_file(config_path);
  } catch (...) {
    // A missing or unreadable file is kNotFound; parse errors inside an
    // existing file are still generic Errors and land there too — the
    // detail string disambiguates.
    return status_from_current_exception(StatusCode::kNotFound);
  }
  return load(config, pipeline);
}

Status Pipeline::write(const WriteRequest& request, WriteResult* result) {
  if (request.path.empty() || request.var.empty()) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "write: path and var are required");
  }
  const bool has_field = request.mesh != nullptr && request.values != nullptr;
  const bool has_cascade = request.cascade != nullptr;
  if (has_field == has_cascade) {
    return Status::failure(
        StatusCode::kInvalidArgument,
        "write: provide either (mesh, values) or a cascade, not both/neither");
  }
  if (has_field && request.values->size() != request.mesh->vertex_count()) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "write: values/mesh size mismatch (" +
                               std::to_string(request.values->size()) + " vs " +
                               std::to_string(request.mesh->vertex_count()) +
                               ")");
  }
  core::RefactorConfig config = request.config;
  config.parallel = options_.parallel;
  try {
    CANOPUS_SPAN("pipeline.write", {{"path", request.path},
                                    {"var", request.var}});
    core::RefactorReport report =
        has_cascade ? core::refactor_and_write(*hierarchy_, request.path,
                                               request.var, *request.cascade,
                                               config)
                    : core::refactor_and_write(*hierarchy_, request.path,
                                               request.var, *request.mesh,
                                               *request.values, config);
    if (result) result->report = std::move(report);
    return Status::success();
  } catch (...) {
    return status_from_exception(/*not_found_on_error=*/false);
  }
}

Status Pipeline::read(const ReadRequest& request, ReadResult* result) {
  if (result == nullptr) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "read: result must not be null");
  }
  if (request.path.empty() || request.var.empty()) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "read: path and var are required");
  }
  if (request.rmse_threshold.has_value() &&
      !std::isfinite(*request.rmse_threshold)) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "read: rmse_threshold must be finite");
  }
  try {
    CANOPUS_SPAN("pipeline.read", {{"path", request.path},
                                   {"var", request.var}});
    return run_read(request, result);
  } catch (...) {
    return status_from_exception(/*not_found_on_error=*/true);
  }
}

Status Pipeline::run_read(const ReadRequest& request, ReadResult* result) {
  core::ReaderOptions reader_options;
  reader_options.parallel = options_.parallel;
  reader_options.io = options_.io;
  core::ProgressiveReader reader(*hierarchy_, request.path, request.var,
                                 request.geometry, reader_options);
  // Opening retrieved the base; refinement failures from here on are
  // elastic-degradation, not exceptions.
  if (request.roi.has_value()) {
    reader.refine_region(*request.roi);
  } else if (request.rmse_threshold.has_value()) {
    reader.refine_until(*request.rmse_threshold);
  } else {
    const auto target = std::min<std::uint32_t>(
        request.target_level,
        static_cast<std::uint32_t>(reader.level_count() - 1));
    reader.refine_to(target);
  }
  result->values = reader.values();
  result->mesh = reader.current_mesh();
  result->level = reader.current_level();
  result->timings = reader.cumulative();
  result->refine_status = reader.last_status();
  return status_from_read(reader.last_status(), reader.cumulative());
}

Status Pipeline::open(const ReadRequest& request,
                      std::unique_ptr<core::ProgressiveReader>* reader) {
  if (reader == nullptr) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "open: reader must not be null");
  }
  if (request.path.empty() || request.var.empty()) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "open: path and var are required");
  }
  try {
    core::ReaderOptions reader_options;
    reader_options.parallel = options_.parallel;
    reader_options.io = options_.io;
    *reader = std::make_unique<core::ProgressiveReader>(
        *hierarchy_, request.path, request.var, request.geometry,
        reader_options);
    return Status::success();
  } catch (...) {
    return status_from_exception(/*not_found_on_error=*/true);
  }
}

Status Pipeline::open_session(const ReadRequest& request,
                              std::unique_ptr<ReadSession>* session) {
  if (session == nullptr) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "open_session: session must not be null");
  }
  if (request.path.empty() || request.var.empty()) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "open_session: path and var are required");
  }
  try {
    core::ReaderOptions reader_options;
    reader_options.parallel = options_.parallel;
    reader_options.io = options_.io;
    if (session_pool_.has_value()) {
      reader_options.shared_pool = &*session_pool_;
    }
    auto reader = std::make_unique<core::ProgressiveReader>(
        *hierarchy_, request.path, request.var, request.geometry,
        reader_options);
    session->reset(new ReadSession(std::move(reader)));
    return Status::success();
  } catch (...) {
    return status_from_exception(/*not_found_on_error=*/true);
  }
}

Status ReadSession::refine() {
  try {
    const core::RetrievalTimings step = reader_->refine();
    return status_from_read(reader_->last_status(), step);
  } catch (...) {
    return status_from_exception(/*not_found_on_error=*/false);
  }
}

Status ReadSession::refine_to(std::uint32_t level) {
  try {
    const core::RetrievalTimings acc = reader_->refine_to(level);
    return status_from_read(reader_->last_status(), acc);
  } catch (...) {
    return status_from_exception(/*not_found_on_error=*/false);
  }
}

Status ReadSession::refine_until(double rmse_threshold) {
  if (!std::isfinite(rmse_threshold)) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "refine_until: rmse_threshold must be finite");
  }
  try {
    const core::RetrievalTimings acc = reader_->refine_until(rmse_threshold);
    return status_from_read(reader_->last_status(), acc);
  } catch (...) {
    return status_from_exception(/*not_found_on_error=*/false);
  }
}

Status Pipeline::flush_trace(std::string* path_out) {
  try {
    std::string path = obs::flush();
    if (path_out != nullptr) *path_out = std::move(path);
    return Status::success();
  } catch (...) {
    // obs::flush throws on an unwritable sink path; surface it as I/O.
    return status_from_current_exception(StatusCode::kIoError);
  }
}

std::string Pipeline::flush_observability() { return obs::flush(); }

}  // namespace canopus
