#pragma once
// Campaign-scale refactoring: many timesteps of one variable over a static
// simulation mesh.
//
// This is the regime the paper targets ("simulation results need to be
// written once but analyzed a number of times"; XGC1 writes its grid data
// every few timesteps over a fixed mesh). The geometry pipeline — decimation
// cascade, per-level meshes, restoration mappings — depends only on the mesh
// when the edge priority is shortest-first, so it runs once; each timestep
// then decimates by *replaying* the recorded collapse sequence, computes its
// deltas against the shared mappings, compresses, and is placed on the
// hierarchy. Timesteps are independent, so the per-timestep work fans out on
// a thread pool (the paper's "embarrassingly parallel" refactoring claim).
//
// The container layout names each timestep's blocks "<var>/t<k>", and the
// shared geometry lives under "<var>" itself, so a GeometryCache loaded for
// `var` serves every timestep's ProgressiveReader.

#include <string>
#include <vector>

#include "core/refactorer.hpp"
#include "core/types.hpp"
#include "mesh/tri_mesh.hpp"
#include "storage/hierarchy.hpp"

namespace canopus::core {

struct CampaignConfig {
  RefactorConfig refactor;
  /// Worker threads for per-timestep refactoring (0 = hardware concurrency).
  std::size_t threads = 0;
};

struct CampaignReport {
  std::size_t timesteps = 0;
  std::size_t raw_bytes = 0;
  std::size_t stored_bytes = 0;       // data products only (base + deltas)
  std::size_t geometry_bytes = 0;     // one-time meshes + mappings
  double geometry_seconds = 0.0;      // cascade + mapping build (wall)
  double refactor_wall_seconds = 0.0; // parallel per-timestep phase (wall)
  double io_sim_seconds = 0.0;        // simulated placement cost
};

/// Variable name for one timestep's blocks.
std::string timestep_var(const std::string& var, std::size_t step);

/// The general primitive: refactors several named fields that share one mesh
/// (different variables of a run, timesteps, toroidal planes of a 3-D
/// variable — anything sampled on the same geometry) and writes them plus a
/// single copy of the shared geometry (stored under `geometry_var`) into the
/// container at `path`. Readers load one GeometryCache for `geometry_var`
/// and open ProgressiveReaders per member name. Requires kShortestFirst edge
/// priority (the replayed collapse sequence must be field-independent).
CampaignReport write_variable_group(
    storage::StorageHierarchy& hierarchy, const std::string& path,
    const std::string& geometry_var, const mesh::TriMesh& mesh,
    const std::vector<std::pair<std::string, mesh::Field>>& variables,
    const CampaignConfig& config);

/// Timestep campaign: write_variable_group with members named
/// timestep_var(var, 0..N-1) and the geometry under `var`.
CampaignReport write_campaign(storage::StorageHierarchy& hierarchy,
                              const std::string& path, const std::string& var,
                              const mesh::TriMesh& mesh,
                              const std::vector<mesh::Field>& timesteps,
                              const CampaignConfig& config);

}  // namespace canopus::core
