#pragma once
// canopus::Topology — a consistent point-in-time snapshot of the serving
// cluster, taken by Pipeline::topology().
//
// Plain data on purpose (strings + integers, no fabric types): callers
// inspect or log it without linking the fabric module, and a snapshot stays
// meaningful after the topology it describes has moved on — compare `epoch`
// against a fresh snapshot (or the topology.epoch gauge) to find out whether
// it has. Node ids are stable for the fabric's lifetime: a detached node's
// entry stays in `nodes` with active=false rather than renumbering the rest.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace canopus {

struct Topology {
  struct Node {
    std::uint32_t id = 0;       // stable slot id (never reused)
    bool alive = true;          // not failure-simulated down (kill_node)
    bool active = true;         // in the directory's active set (serves and
                                // owns chunks; false once drained/detached)
    std::vector<std::string> tiers;  // tier names, fastest first
    std::uint64_t owned_bytes = 0;   // directory-owned chunk payload bytes
    std::uint64_t used_bytes = 0;    // bytes resident across the node's tiers
  };

  /// ChunkDirectory::epoch() at snapshot time; bumped by every
  /// attach/detach/rebalance, NOT by individual chunk cutovers.
  std::uint64_t epoch = 0;
  /// Committed ownership transfers so far (Fabric::Stats::migrations).
  std::uint64_t migrations = 0;
  /// Sharded chunk groups the directory tracks.
  std::size_t chunk_groups = 0;
  std::vector<Node> nodes;

  /// Nodes currently in service (active && alive).
  std::size_t active_nodes() const {
    std::size_t n = 0;
    for (const auto& node : nodes) {
      if (node.active && node.alive) ++n;
    }
    return n;
  }
};

}  // namespace canopus
