#include "core/refactorer.hpp"

#include <optional>

#include "compress/codec.hpp"
#include "core/delta.hpp"
#include "util/assert.hpp"

namespace canopus::core {

namespace {

/// Paper Fig. 1 layout: base on the fastest tier, deltas progressively lower
/// (finest delta on the slowest). Level l's product goes `N-1-l` tiers down,
/// clamped to the stack depth; the hierarchy still bypasses full tiers.
std::optional<std::uint32_t> tier_hint_for(const RefactorConfig& config,
                                           const storage::StorageHierarchy& hierarchy,
                                           std::uint32_t level, std::size_t nbytes) {
  if (!config.tiered_placement) return std::nullopt;
  const std::size_t want =
      std::min(hierarchy.tier_count() - 1,
               static_cast<std::size_t>(config.levels - 1 - level));
  // Respect the hint only when that tier has room; otherwise fall back to the
  // generic bypass placement.
  if (hierarchy.tier(want).fits(nbytes)) return static_cast<std::uint32_t>(want);
  return std::nullopt;
}

}  // namespace

std::size_t RefactorReport::total_raw_bytes() const {
  std::size_t n = 0;
  for (const auto& p : products) n += p.raw_bytes;
  return n;
}

std::size_t RefactorReport::total_stored_bytes() const {
  std::size_t n = 0;
  for (const auto& p : products) n += p.stored_bytes;
  return n;
}

RefactorReport refactor_and_write(storage::StorageHierarchy& hierarchy,
                                  const std::string& path, const std::string& var,
                                  const mesh::TriMesh& mesh,
                                  const mesh::Field& values,
                                  const RefactorConfig& config) {
  CANOPUS_CHECK(config.levels >= 1, "refactor needs at least one level");
  RefactorReport report;

  // --- Decimation: build the level hierarchy L^0 .. L^{N-1}. -------------
  mesh::Cascade cascade;
  report.phases.time("decimation", [&] {
    mesh::CascadeOptions copt;
    copt.levels = config.levels;
    copt.step = config.step;
    copt.decimate = config.decimate;
    cascade = mesh::build_cascade(mesh, values, copt);
  });
  for (const auto& level : cascade.levels) {
    report.level_vertices.push_back(level.mesh.vertex_count());
  }

  // --- Delta calculation + compression + placement. ----------------------
  adios::BpWriter writer(hierarchy, path);
  writer.set_attribute("levels", std::to_string(config.levels));
  writer.set_attribute("codec", config.codec);
  writer.set_attribute("estimate", to_string(config.estimate));
  writer.set_attribute("error_bound", std::to_string(config.error_bound));

  const auto N = config.levels;
  const auto base_level = static_cast<std::uint32_t>(N - 1);

  // Base dataset L^{N-1}.
  {
    const auto& base = cascade.levels[N - 1];
    const auto hint = tier_hint_for(config, hierarchy, base_level,
                                    base.values.size() * sizeof(double));
    const auto t = writer.write_doubles(var, adios::BlockKind::kBase, base_level,
                                        base.values, config.codec,
                                        config.error_bound, hint);
    report.phases.add("delta+compress", t.compress_seconds);
    report.phases.add("io", t.io_sim_seconds);
    report.products.push_back({"base", base_level, base.values.size() * sizeof(double),
                               t.bytes_written, t.tier});
  }

  // Deltas, coarse to fine: delta^{l-(l+1)} for l = N-2 .. 0.
  for (std::size_t l = N - 1; l-- > 0;) {
    const auto& fine = cascade.levels[l];
    const auto& coarse = cascade.levels[l + 1];

    VertexMapping mapping;
    mesh::Field delta;
    report.phases.time("delta+compress", [&] {
      mapping = build_mapping(fine.mesh, coarse.mesh);
      delta = compute_delta(coarse.mesh, coarse.values, fine.values, mapping,
                            config.estimate);
    });

    const auto level = static_cast<std::uint32_t>(l);
    const auto hint =
        tier_hint_for(config, hierarchy, level, delta.size() * sizeof(double));
    // Split the delta into independently decodable chunks with spatial
    // extents so readers can fetch only a region of interest. Chunked deltas
    // are permuted into the deterministic Morton ordering of the fine mesh
    // (spatial_order), which both sides recompute from geometry: chunks get
    // tight bounding boxes regardless of the mesh's native vertex numbering,
    // and spatial coherence also helps the codec.
    const std::uint32_t nchunks =
        std::max<std::uint32_t>(1, std::min<std::uint32_t>(
                                       config.delta_chunks,
                                       static_cast<std::uint32_t>(delta.size())));
    ChunkIndex index;
    std::size_t delta_stored = 0;
    std::uint32_t delta_tier = 0;
    mesh::Field ordered;
    std::vector<mesh::VertexId> order;
    if (nchunks > 1) {
      order = mesh::spatial_order(fine.mesh);
      ordered.resize(delta.size());
      for (std::size_t pos = 0; pos < order.size(); ++pos) {
        ordered[pos] = delta[order[pos]];
      }
    }
    const mesh::Field& payload = nchunks > 1 ? ordered : delta;
    for (std::uint32_t c = 0; c < nchunks; ++c) {
      const std::size_t start = payload.size() * c / nchunks;
      const std::size_t stop = payload.size() * (c + 1) / nchunks;
      if (nchunks > 1) {
        ChunkIndex::Range range;
        range.start = start;
        range.count = stop - start;
        range.bbox.lo = range.bbox.hi = fine.mesh.vertex(order[start]);
        for (std::size_t pos = start; pos < stop; ++pos) {
          range.bbox.expand(fine.mesh.vertex(order[pos]));
        }
        index.chunks.push_back(range);
      }
      const auto t = writer.write_doubles_chunk(
          var, adios::BlockKind::kDelta, level, c, nchunks,
          std::span<const double>(payload).subspan(start, stop - start),
          config.codec, config.error_bound, hint);
      report.phases.add("delta+compress", t.compress_seconds);
      report.phases.add("io", t.io_sim_seconds);
      delta_stored += t.bytes_written;
      delta_tier = t.tier;
    }
    if (nchunks > 1) {
      util::ByteWriter index_bytes;
      index.serialize(index_bytes);
      const auto t = writer.write_opaque(var, adios::BlockKind::kChunkIndex,
                                         level, index_bytes.view(), hint);
      report.phases.add("io", t.io_sim_seconds);
    }
    report.products.push_back({"delta" + std::to_string(l), level,
                               delta.size() * sizeof(double), delta_stored,
                               delta_tier});

    // Persist the mapping next to the delta so restoration never re-runs
    // point location (Section III-E2).
    util::ByteWriter map_bytes;
    mapping.serialize(map_bytes);
    const auto mt = writer.write_opaque(var, adios::BlockKind::kMapping, level,
                                        map_bytes.view(), hint);
    report.phases.add("io", mt.io_sim_seconds);
  }

  // Per-level meshes (geometry travels with the data: a decimated level is a
  // complete, directly consumable dataset).
  for (std::size_t l = 0; l < N; ++l) {
    util::ByteWriter mesh_bytes;
    cascade.levels[l].mesh.serialize(mesh_bytes);
    const auto level = static_cast<std::uint32_t>(l);
    const auto hint =
        tier_hint_for(config, hierarchy, level, mesh_bytes.size());
    const auto t = writer.write_opaque(var, adios::BlockKind::kMesh, level,
                                       mesh_bytes.view(), hint);
    report.phases.add("io", t.io_sim_seconds);
  }

  writer.close();
  return report;
}

RefactorReport direct_multilevel_sizes(const mesh::TriMesh& mesh,
                                       const mesh::Field& values,
                                       const RefactorConfig& config) {
  RefactorReport report;
  mesh::Cascade cascade;
  report.phases.time("decimation", [&] {
    mesh::CascadeOptions copt;
    copt.levels = config.levels;
    copt.step = config.step;
    copt.decimate = config.decimate;
    cascade = mesh::build_cascade(mesh, values, copt);
  });
  const auto codec = compress::make_codec(config.codec);
  for (std::size_t l = 0; l < cascade.level_count(); ++l) {
    const auto& level = cascade.levels[l];
    report.level_vertices.push_back(level.mesh.vertex_count());
    util::Bytes payload;
    report.phases.time("delta+compress", [&] {
      payload = codec->encode(level.values, config.error_bound);
    });
    report.products.push_back({"L" + std::to_string(l),
                               static_cast<std::uint32_t>(l),
                               level.values.size() * sizeof(double),
                               payload.size(), 0});
  }
  return report;
}

}  // namespace canopus::core
