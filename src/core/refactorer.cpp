#include "core/refactorer.hpp"

#include <algorithm>
#include <future>
#include <optional>
#include <utility>

#include "compress/codec.hpp"
#include "core/delta.hpp"
#include "core/geometry_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace canopus::core {

namespace {

/// Paper Fig. 1 layout: base on the fastest tier, deltas progressively lower
/// (finest delta on the slowest). Level l's product goes `N-1-l` tiers down,
/// clamped to the stack depth; the hierarchy still bypasses full tiers.
std::optional<std::uint32_t> tier_hint_for(const RefactorConfig& config,
                                           const storage::StorageHierarchy& hierarchy,
                                           std::uint32_t level, std::size_t nbytes) {
  if (!config.tiered_placement) return std::nullopt;
  const std::size_t want =
      std::min(hierarchy.tier_count() - 1,
               static_cast<std::size_t>(config.levels - 1 - level));
  // Respect the hint only when that tier has room; otherwise fall back to the
  // generic bypass placement.
  if (hierarchy.tier(want).fits(nbytes)) return static_cast<std::uint32_t>(want);
  return std::nullopt;
}

/// One delta chunk, encoded on a pool worker and ready to place.
struct PreparedChunk {
  util::Bytes payload;
  std::uint64_t value_count = 0;
  double encode_seconds = 0.0;
};

/// Everything of one delta level that the compute stage produces and the
/// committer stage consumes. Built entirely off the container, so preparing
/// level l can overlap committing level l+1.
struct PreparedLevel {
  std::uint32_t level = 0;
  std::size_t raw_bytes = 0;
  std::uint32_t nchunks = 1;
  std::vector<PreparedChunk> chunks;
  ChunkIndex index;          // populated when nchunks > 1
  util::Bytes index_bytes;   // serialized index (nchunks > 1)
  util::Bytes map_bytes;     // serialized restoration mapping
  double compute_seconds = 0.0;  // mapping + delta wall time
};

/// Compute stage: mapping, delta, Morton permutation, per-chunk bounding
/// boxes, and chunk encoding — everything data-parallel fans out on `pool`,
/// and nothing here touches the writer or the hierarchy.
PreparedLevel prepare_level(const mesh::Cascade& cascade, std::size_t l,
                            const RefactorConfig& config,
                            util::ThreadPool& pool) {
  const auto& fine = cascade.levels[l];
  const auto& coarse = cascade.levels[l + 1];

  PreparedLevel out;
  out.level = static_cast<std::uint32_t>(l);

  VertexMapping mapping;
  mesh::Field delta;
  {
    CANOPUS_SPAN("refactor.delta", {{"level", out.level}});
    util::WallTimer t;
    mapping = build_mapping(fine.mesh, coarse.mesh, &pool);
    delta = compute_delta(coarse.mesh, coarse.values, fine.values, mapping,
                          config.estimate, &pool);
    out.compute_seconds = t.seconds();
  }
  out.raw_bytes = delta.size() * sizeof(double);

  // Split the delta into independently decodable chunks with spatial extents
  // so readers can fetch only a region of interest. Chunked deltas are
  // permuted into the deterministic Morton ordering of the fine mesh
  // (spatial_order), which both sides derive from geometry: chunks get tight
  // bounding boxes regardless of the mesh's native vertex numbering, and
  // spatial coherence also helps the codec.
  out.nchunks =
      std::max<std::uint32_t>(1, std::min<std::uint32_t>(
                                     config.delta_chunks,
                                     static_cast<std::uint32_t>(delta.size())));

  std::shared_ptr<const std::vector<mesh::VertexId>> order;
  mesh::Field ordered;
  if (out.nchunks > 1) {
    order = cached_spatial_order(fine.mesh);
    ordered.resize(delta.size());
    pool.parallel_for(
        0, order->size(),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t pos = lo; pos < hi; ++pos) {
            ordered[pos] = delta[(*order)[pos]];
          }
        },
        /*grain=*/4096);
  }
  const mesh::Field& payload = out.nchunks > 1 ? ordered : delta;

  // Encode every chunk (and build its bbox) concurrently; gathering futures
  // in chunk order keeps the output sequence identical to the serial loop.
  struct ChunkResult {
    PreparedChunk chunk;
    ChunkIndex::Range range;
  };
  std::vector<std::future<ChunkResult>> encoded;
  encoded.reserve(out.nchunks);
  for (std::uint32_t c = 0; c < out.nchunks; ++c) {
    const std::size_t start = payload.size() * c / out.nchunks;
    const std::size_t stop = payload.size() * (c + 1) / out.nchunks;
    encoded.push_back(pool.submit([&, c, start, stop]() -> ChunkResult {
      CANOPUS_SPAN("refactor.compress", {{"level", out.level}, {"chunk", c}});
      ChunkResult r;
      if (out.nchunks > 1) {
        r.range.start = start;
        r.range.count = stop - start;
        r.range.bbox.lo = r.range.bbox.hi = fine.mesh.vertex((*order)[start]);
        for (std::size_t pos = start; pos < stop; ++pos) {
          r.range.bbox.expand(fine.mesh.vertex((*order)[pos]));
        }
      }
      util::WallTimer t;
      const auto codec = compress::make_codec(config.codec);
      r.chunk.payload = codec->encode(
          std::span<const double>(payload).subspan(start, stop - start),
          config.error_bound);
      r.chunk.encode_seconds = t.seconds();
      r.chunk.value_count = stop - start;
      return r;
    }));
  }
  out.chunks.reserve(out.nchunks);
  for (auto& f : encoded) {
    auto r = f.get();
    out.chunks.push_back(std::move(r.chunk));
    if (out.nchunks > 1) out.index.chunks.push_back(r.range);
  }
  if (out.nchunks > 1) {
    util::ByteWriter w;
    out.index.serialize(w);
    out.index_bytes.assign(w.view().begin(), w.view().end());
  }

  // Persist the mapping next to the delta so restoration never re-runs
  // point location (Section III-E2).
  util::ByteWriter map_writer;
  mapping.serialize(map_writer);
  out.map_bytes.assign(map_writer.view().begin(), map_writer.view().end());
  return out;
}

/// Commit stage: the single committer. Computes the tier hint and places
/// every block of one level in the same order as the serial pipeline, so
/// hierarchy state (and therefore placement) evolves identically for any
/// thread count; it is the only stage that mutates writer and report.
void commit_level(adios::BpWriter& writer, storage::StorageHierarchy& hierarchy,
                  const std::string& var, const RefactorConfig& config,
                  RefactorReport& report, PreparedLevel prepared) {
  CANOPUS_SPAN("refactor.commit", {{"level", prepared.level}});
  const auto hint =
      tier_hint_for(config, hierarchy, prepared.level, prepared.raw_bytes);
  report.phases.add("delta+compress", prepared.compute_seconds);

  ProductSize product;
  product.name = "delta" + std::to_string(prepared.level);
  product.level = prepared.level;
  product.raw_bytes = prepared.raw_bytes;
  for (std::uint32_t c = 0; c < prepared.nchunks; ++c) {
    auto& chunk = prepared.chunks[c];
    const auto t = writer.write_precompressed_chunk(
        var, adios::BlockKind::kDelta, prepared.level, c, prepared.nchunks,
        chunk.payload, config.codec, config.error_bound, chunk.value_count,
        hint);
    report.phases.add("delta+compress", chunk.encode_seconds);
    report.phases.add("io", t.io_sim_seconds);
    product.stored_bytes += t.bytes_written;
    product.chunk_tiers.push_back(t.tier);
  }
  // The product's headline tier is the slowest one holding any chunk: that is
  // what bounds a retrieval of the whole delta, whereas the previously
  // reported "tier of the last chunk written" says nothing once hint fallback
  // or striping scatters chunks.
  product.tier =
      *std::max_element(product.chunk_tiers.begin(), product.chunk_tiers.end());

  if (prepared.nchunks > 1) {
    const auto t = writer.write_opaque(var, adios::BlockKind::kChunkIndex,
                                       prepared.level, prepared.index_bytes,
                                       hint);
    report.phases.add("io", t.io_sim_seconds);
  }
  report.products.push_back(std::move(product));

  const auto mt = writer.write_opaque(var, adios::BlockKind::kMapping,
                                      prepared.level, prepared.map_bytes, hint);
  report.phases.add("io", mt.io_sim_seconds);
}

}  // namespace

std::size_t RefactorReport::total_raw_bytes() const {
  std::size_t n = 0;
  for (const auto& p : products) n += p.raw_bytes;
  return n;
}

std::size_t RefactorReport::total_stored_bytes() const {
  std::size_t n = 0;
  for (const auto& p : products) n += p.stored_bytes;
  return n;
}

RefactorReport refactor_and_write(storage::StorageHierarchy& hierarchy,
                                  const std::string& path, const std::string& var,
                                  const mesh::TriMesh& mesh,
                                  const mesh::Field& values,
                                  const RefactorConfig& config) {
  CANOPUS_CHECK(config.levels >= 1, "refactor needs at least one level");
  // --- Decimation: build the level hierarchy L^0 .. L^{N-1}. -------------
  RefactorReport report;
  mesh::Cascade cascade;
  report.phases.time("decimation", [&] {
    CANOPUS_SPAN("refactor.decimate", {{"levels", config.levels}});
    mesh::CascadeOptions copt;
    copt.levels = config.levels;
    copt.step = config.step;
    copt.decimate = config.decimate;
    cascade = mesh::build_cascade(mesh, values, copt);
  });

  auto pipeline_report = refactor_and_write(hierarchy, path, var, cascade, config);
  // Splice the decimation phase in front of the pipeline phases.
  for (const auto& phase : pipeline_report.phases.phases()) {
    report.phases.add(phase, pipeline_report.phases.get(phase));
  }
  report.products = std::move(pipeline_report.products);
  report.level_vertices = std::move(pipeline_report.level_vertices);
  return report;
}

RefactorReport refactor_and_write(storage::StorageHierarchy& hierarchy,
                                  const std::string& path, const std::string& var,
                                  const mesh::Cascade& cascade,
                                  const RefactorConfig& config) {
  CANOPUS_CHECK(config.levels >= 1, "refactor needs at least one level");
  CANOPUS_CHECK(cascade.level_count() == config.levels,
                "cascade does not match config.levels");
  CANOPUS_SPAN("refactor.write", {{"var", var}, {"levels", config.levels}});
  obs::MetricsRegistry::global().counter("refactor.variables").add(1);
  RefactorReport report;
  for (const auto& level : cascade.levels) {
    report.level_vertices.push_back(level.mesh.vertex_count());
  }

  // Task engine: a dedicated pool when the config pins a worker count, the
  // process-global pool otherwise. With a single worker the compute/commit
  // overlap is disabled so "1 thread" really means serial execution.
  std::optional<util::ThreadPool> local_pool;
  util::ThreadPool& pool = config.parallel.threads == 0
                               ? util::ThreadPool::global()
                               : local_pool.emplace(config.parallel.threads);
  const bool overlap = config.parallel.pipeline && pool.size() > 1;

  // --- Delta calculation + compression + placement. ----------------------
  adios::BpWriter writer(hierarchy, path);
  writer.set_attribute("levels", std::to_string(config.levels));
  writer.set_attribute("codec", config.codec);
  writer.set_attribute("estimate", to_string(config.estimate));
  writer.set_attribute("error_bound", std::to_string(config.error_bound));

  const auto N = config.levels;
  const auto base_level = static_cast<std::uint32_t>(N - 1);

  // Base dataset L^{N-1}.
  {
    const auto& base = cascade.levels[N - 1];
    const auto hint = tier_hint_for(config, hierarchy, base_level,
                                    base.values.size() * sizeof(double));
    const auto t = writer.write_doubles(var, adios::BlockKind::kBase, base_level,
                                        base.values, config.codec,
                                        config.error_bound, hint);
    report.phases.add("delta+compress", t.compress_seconds);
    report.phases.add("io", t.io_sim_seconds);
    ProductSize product{"base", base_level, base.values.size() * sizeof(double),
                        t.bytes_written, t.tier, {t.tier}};
    report.products.push_back(std::move(product));
  }

  // Deltas, coarse to fine: delta^{l-(l+1)} for l = N-2 .. 0. The bounded
  // two-stage pipeline overlaps preparing level l (mapping, delta, encode —
  // all pool-parallel) with committing level l+1 (serialized placement):
  // exactly one commit is in flight, and commits run in level order, so the
  // container ends up byte-identical to the serial pipeline's.
  std::future<void> committing;
  const auto drain = [&committing] {
    if (committing.valid()) committing.get();
  };
  try {
    for (std::size_t l = N - 1; l-- > 0;) {
      PreparedLevel prepared = prepare_level(cascade, l, config, pool);
      drain();
      if (overlap) {
        committing =
            pool.submit([&writer, &hierarchy, &var, &config, &report,
                         p = std::move(prepared)]() mutable {
              commit_level(writer, hierarchy, var, config, report, std::move(p));
            });
      } else {
        commit_level(writer, hierarchy, var, config, report,
                     std::move(prepared));
      }
    }
    drain();
  } catch (...) {
    // A failed prepare must not leave the in-flight commit referencing report
    // and writer after this frame unwinds.
    if (committing.valid()) committing.wait();
    throw;
  }

  // Per-level meshes (geometry travels with the data: a decimated level is a
  // complete, directly consumable dataset).
  for (std::size_t l = 0; l < N; ++l) {
    util::ByteWriter mesh_bytes;
    cascade.levels[l].mesh.serialize(mesh_bytes);
    const auto level = static_cast<std::uint32_t>(l);
    const auto hint =
        tier_hint_for(config, hierarchy, level, mesh_bytes.size());
    const auto t = writer.write_opaque(var, adios::BlockKind::kMesh, level,
                                       mesh_bytes.view(), hint);
    report.phases.add("io", t.io_sim_seconds);
  }

  writer.close();
  return report;
}

RefactorReport direct_multilevel_sizes(const mesh::TriMesh& mesh,
                                       const mesh::Field& values,
                                       const RefactorConfig& config) {
  RefactorReport report;
  mesh::Cascade cascade;
  report.phases.time("decimation", [&] {
    mesh::CascadeOptions copt;
    copt.levels = config.levels;
    copt.step = config.step;
    copt.decimate = config.decimate;
    cascade = mesh::build_cascade(mesh, values, copt);
  });
  const auto codec = compress::make_codec(config.codec);
  for (std::size_t l = 0; l < cascade.level_count(); ++l) {
    const auto& level = cascade.levels[l];
    report.level_vertices.push_back(level.mesh.vertex_count());
    util::Bytes payload;
    report.phases.time("delta+compress", [&] {
      payload = codec->encode(level.values, config.error_bound);
    });
    report.products.push_back({"L" + std::to_string(l),
                               static_cast<std::uint32_t>(l),
                               level.values.size() * sizeof(double),
                               payload.size(), 0, {0}});
  }
  return report;
}

}  // namespace canopus::core
