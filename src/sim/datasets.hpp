#pragma once
// Synthetic stand-ins for the paper's three evaluation datasets.
//
// The original data (XGC1 dpot planes, GenASiS normVec magnitude, a CFD
// kernel's jet pressure) is not redistributable, so each generator produces
// a mesh + field with the same structural features the Canopus pipeline and
// the blob-detection study depend on (see DESIGN.md section 2):
//
//   xgc1:    toroidal-plane annulus; smooth radial potential profile,
//            localized over/under-density "blobs" near the outer edge, plus
//            band-limited turbulence.
//   genasis: disk around a collapsed core; steep shock front in the magnetic
//            field magnitude with angular modulation, very smooth elsewhere.
//   cfd:     rectangular flow domain with an elliptic body; potential-flow
//            pressure with a stagnation point and gradients concentrated at
//            the body/airflow interface.
//
// All generators are deterministic in their seed.

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/tri_mesh.hpp"

namespace canopus::sim {

struct Dataset {
  std::string name;      // "xgc1", "genasis", "cfd"
  std::string variable;  // "dpot", "normVec", "pressure"
  mesh::TriMesh mesh;
  mesh::Field values;
};

/// Ground-truth blob description (XGC1 only), for validating detection.
struct BlobSpec {
  mesh::Vec2 center;
  double radius = 0.0;
  double amplitude = 0.0;  // signed: over- or under-density
};

struct XgcOptions {
  std::size_t rings = 64;
  std::size_t sectors = 320;     // ~20.5k vertices, ~41k triangles (paper's plane)
  double r_inner = 0.3;
  double r_outer = 1.0;
  std::size_t blob_count = 24;
  double blob_amplitude = 1.0;   // peak |dpot| of a blob
  double blob_radius = 0.055;    // spatial sigma
  /// dpot is a *deviation* from the background potential, so the residual
  /// smooth profile is small relative to the blobs.
  double background_amplitude = 0.08;
  double turbulence_amplitude = 0.05;
  double jitter = 0.12;
  /// Renumber vertices randomly to model production unstructured-mesh
  /// numbering (see mesh::shuffle_vertices).
  bool shuffled = true;
  std::uint64_t seed = 2017;
};

struct GenasisOptions {
  std::size_t rings = 128;
  std::size_t sectors = 510;     // ~130k triangles (paper's mesh)
  double radius = 1.0;
  double shock_radius = 0.45;
  double shock_width = 0.06;  // a few cells wide: the solver resolves it
  double field_peak = 3.0;
  double angular_modulation = 0.3;
  double noise = 0.002;
  double jitter = 0.1;
  bool shuffled = true;
  std::uint64_t seed = 1987;
};

struct CfdOptions {
  std::size_t nx = 100;
  std::size_t ny = 64;           // ~12.6k triangles after the cutout
  double width = 10.0;
  double height = 6.0;
  double body_x = 3.5;
  double body_y = 3.0;
  double chord = 2.2;
  double thickness = 0.8;
  double free_stream = 1.0;      // U_inf
  double jitter = 0.1;
  bool shuffled = true;
  std::uint64_t seed = 1903;
};

Dataset make_xgc_dataset(const XgcOptions& opt = {},
                         std::vector<BlobSpec>* blob_truth = nullptr);
Dataset make_genasis_dataset(const GenasisOptions& opt = {});
Dataset make_cfd_dataset(const CfdOptions& opt = {});

/// Convenience: the three datasets at a size scale factor (1.0 = paper-sized
/// meshes; benches use smaller scales for quick runs).
std::vector<Dataset> all_datasets(double scale = 1.0, std::uint64_t seed = 7);

}  // namespace canopus::sim
