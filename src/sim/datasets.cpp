#include "sim/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "mesh/generators.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace canopus::sim {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

Dataset make_xgc_dataset(const XgcOptions& opt, std::vector<BlobSpec>* blob_truth) {
  util::Rng rng(opt.seed);
  Dataset ds;
  ds.name = "xgc1";
  ds.variable = "dpot";
  ds.mesh = mesh::make_annulus_mesh(opt.rings, opt.sectors, opt.r_inner,
                                    opt.r_outer, opt.jitter, opt.seed ^ 0x5EED);
  if (opt.shuffled) ds.mesh = mesh::shuffle_vertices(ds.mesh, opt.seed ^ 0xF00D);

  // Blobs develop near the edge of the device (paper: "near the edge of the
  // detector"): place them in the outer 25% of the annulus, alternating
  // over/under densities.
  std::vector<BlobSpec> blobs;
  for (std::size_t b = 0; b < opt.blob_count; ++b) {
    const double r = rng.uniform(opt.r_outer * 0.78, opt.r_outer * 0.95);
    const double theta = rng.uniform(0.0, kTwoPi);
    BlobSpec spec;
    spec.center = {r * std::cos(theta), r * std::sin(theta)};
    // Wide size and amplitude spread: intermittent blob populations span a
    // range of scales, and the faint small ones are the first to vanish
    // under decimation (the Fig. 8a effect).
    spec.radius = opt.blob_radius * rng.uniform(0.35, 1.3);
    const double sign = (b % 3 == 2) ? -1.0 : 1.0;  // mostly over-densities
    spec.amplitude = sign * opt.blob_amplitude * rng.uniform(0.15, 1.0);
    blobs.push_back(spec);
  }

  // Band-limited turbulence: a few low-order poloidal modes.
  struct Mode {
    double m, k, phase, amp;
  };
  std::vector<Mode> modes;
  for (int i = 0; i < 6; ++i) {
    modes.push_back({static_cast<double>(3 + 2 * i),
                     rng.uniform(4.0, 14.0),
                     rng.uniform(0.0, kTwoPi),
                     opt.turbulence_amplitude * rng.uniform(0.5, 1.0)});
  }

  ds.values.resize(ds.mesh.vertex_count());
  for (mesh::VertexId v = 0; v < ds.mesh.vertex_count(); ++v) {
    const auto p = ds.mesh.vertex(v);
    const double r = p.norm();
    const double theta = std::atan2(p.y, p.x);
    // Smooth radial background: the potential well of the confined plasma.
    const double x01 = (r - opt.r_inner) / (opt.r_outer - opt.r_inner);
    double value = opt.background_amplitude * std::sin(std::numbers::pi * x01);
    for (const auto& m : modes) {
      value += m.amp * std::sin(m.m * theta + m.phase) *
               std::sin(m.k * x01) * x01;  // turbulence grows toward the edge
    }
    for (const auto& b : blobs) {
      const double d2 = (p - b.center).norm2();
      value += b.amplitude * std::exp(-d2 / (2.0 * b.radius * b.radius));
    }
    ds.values[v] = value;
  }
  if (blob_truth) *blob_truth = std::move(blobs);
  return ds;
}

Dataset make_genasis_dataset(const GenasisOptions& opt) {
  util::Rng rng(opt.seed);
  Dataset ds;
  ds.name = "genasis";
  ds.variable = "normVec";
  ds.mesh = mesh::make_disk_mesh(opt.rings, opt.sectors, opt.radius,
                                 opt.jitter, opt.seed ^ 0xACC);
  if (opt.shuffled) ds.mesh = mesh::shuffle_vertices(ds.mesh, opt.seed ^ 0xF00D);

  // Fine-scale structure is spatially coherent (PDE output, not sensor
  // noise): a handful of band-limited ripple modes at the `noise` amplitude.
  struct Mode {
    double m, k, phase;
  };
  std::vector<Mode> ripples;
  for (int i = 0; i < 8; ++i) {
    ripples.push_back({std::floor(rng.uniform(2.0, 7.0)),
                       rng.uniform(3.0, 9.0), rng.uniform(0.0, kTwoPi)});
  }

  ds.values.resize(ds.mesh.vertex_count());
  for (mesh::VertexId v = 0; v < ds.mesh.vertex_count(); ++v) {
    const auto p = ds.mesh.vertex(v);
    const double r = p.norm();
    const double theta = std::atan2(p.y, p.x);
    // Magnetic field magnitude piled up behind a standing accretion shock:
    // high inside the shock radius, decaying outside, with the SASI's
    // low-order angular modulation.
    const double front = 1.0 / (1.0 + std::exp((r - opt.shock_radius) /
                                               opt.shock_width));
    const double modulation =
        1.0 + opt.angular_modulation * std::sin(4.0 * theta) +
        0.5 * opt.angular_modulation * std::sin(2.0 * theta + 0.9);
    const double interior = 0.3 + 0.7 * std::tanh(2.0 * r / opt.shock_radius);
    double ripple = 0.0;
    for (const auto& m : ripples) {
      ripple += std::sin(m.m * theta + m.phase) * std::sin(m.k * r);
    }
    ds.values[v] = opt.field_peak * front * modulation * interior +
                   opt.noise * ripple;
  }
  return ds;
}

Dataset make_cfd_dataset(const CfdOptions& opt) {
  Dataset ds;
  ds.name = "cfd";
  ds.variable = "pressure";
  ds.mesh = mesh::make_airfoil_mesh(opt.nx, opt.ny, opt.width, opt.height,
                                    opt.body_x, opt.body_y, opt.chord,
                                    opt.thickness, opt.jitter, opt.seed);
  if (opt.shuffled) ds.mesh = mesh::shuffle_vertices(ds.mesh, opt.seed ^ 0xF00D);
  // Potential flow around a cylinder of equivalent radius, mapped onto the
  // elliptic body: pressure from Bernoulli with the classic cp(theta,r).
  const double a = 0.5 * std::sqrt(opt.chord * opt.thickness);  // eff. radius
  ds.values.resize(ds.mesh.vertex_count());
  for (mesh::VertexId v = 0; v < ds.mesh.vertex_count(); ++v) {
    const auto p = ds.mesh.vertex(v);
    // Stretch y by the aspect ratio so the flow hugs the elliptic body.
    const double sx = (p.x - opt.body_x);
    const double sy = (p.y - opt.body_y) * (opt.chord / opt.thickness);
    const double r = std::max(std::sqrt(sx * sx + sy * sy), a * 1.01);
    const double theta = std::atan2(sy, sx);
    const double ur = opt.free_stream * (1.0 - (a * a) / (r * r)) * std::cos(theta);
    const double ut = -opt.free_stream * (1.0 + (a * a) / (r * r)) * std::sin(theta);
    const double speed2 = ur * ur + ut * ut;
    // p = p_inf + 1/2 rho (U^2 - |u|^2), rho = 1, p_inf = 1.
    ds.values[v] = 1.0 + 0.5 * (opt.free_stream * opt.free_stream - speed2);
  }
  return ds;
}

std::vector<Dataset> all_datasets(double scale, std::uint64_t seed) {
  CANOPUS_CHECK(scale > 0.0, "dataset scale must be positive");
  const auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(4, static_cast<std::size_t>(
                                        static_cast<double>(n) * std::sqrt(scale)));
  };
  XgcOptions xgc;
  xgc.rings = scaled(xgc.rings);
  xgc.sectors = scaled(xgc.sectors);
  xgc.seed ^= seed;
  GenasisOptions gen;
  gen.rings = scaled(gen.rings);
  gen.sectors = scaled(gen.sectors);
  gen.seed ^= seed;
  CfdOptions cfd;
  cfd.nx = scaled(cfd.nx);
  cfd.ny = scaled(cfd.ny);
  cfd.seed ^= seed;
  std::vector<Dataset> out;
  out.push_back(make_xgc_dataset(xgc));
  out.push_back(make_genasis_dataset(gen));
  out.push_back(make_cfd_dataset(cfd));
  return out;
}

}  // namespace canopus::sim
