#include "compress/huffman.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <queue>

#include "util/assert.hpp"
#include "util/bitstream.hpp"

namespace canopus::compress {

namespace {

constexpr int kSymbols = 256;
constexpr unsigned kMaxCodeLen = 30;

/// Computes Huffman code lengths for the given counts (0 for unused symbols).
std::array<std::uint8_t, kSymbols> code_lengths(std::array<std::uint64_t, kSymbols> counts) {
  struct Node {
    std::uint64_t weight;
    int index;  // < kSymbols: leaf; otherwise internal
  };
  struct Cmp {
    bool operator()(const Node& a, const Node& b) const { return a.weight > b.weight; }
  };

  for (;;) {
    std::array<std::uint8_t, kSymbols> lengths{};
    std::vector<std::pair<int, int>> children;  // internal node -> (left, right)
    std::priority_queue<Node, std::vector<Node>, Cmp> heap;
    int live_symbols = 0;
    for (int s = 0; s < kSymbols; ++s) {
      if (counts[s] > 0) {
        heap.push({counts[s], s});
        ++live_symbols;
      }
    }
    if (live_symbols == 0) return lengths;
    if (live_symbols == 1) {
      lengths[static_cast<std::size_t>(heap.top().index)] = 1;
      return lengths;
    }
    while (heap.size() > 1) {
      Node a = heap.top();
      heap.pop();
      Node b = heap.top();
      heap.pop();
      const int idx = kSymbols + static_cast<int>(children.size());
      children.emplace_back(a.index, b.index);
      heap.push({a.weight + b.weight, idx});
    }
    // Depth-first assign depths.
    std::vector<std::pair<int, std::uint8_t>> stack{{heap.top().index, 0}};
    unsigned max_len = 0;
    while (!stack.empty()) {
      auto [idx, depth] = stack.back();
      stack.pop_back();
      if (idx < kSymbols) {
        lengths[static_cast<std::size_t>(idx)] = depth;
        max_len = std::max<unsigned>(max_len, depth);
      } else {
        const auto& [l, r] = children[static_cast<std::size_t>(idx - kSymbols)];
        stack.push_back({l, static_cast<std::uint8_t>(depth + 1)});
        stack.push_back({r, static_cast<std::uint8_t>(depth + 1)});
      }
    }
    if (max_len <= kMaxCodeLen) return lengths;
    // Flatten the distribution and retry; converges because counts shrink
    // toward uniform.
    for (auto& c : counts) {
      if (c > 0) c = c / 2 + 1;
    }
  }
}

struct CanonicalCodes {
  std::array<std::uint32_t, kSymbols> code{};
  std::array<std::uint8_t, kSymbols> len{};
};

/// Assigns canonical codes: symbols sorted by (length, value).
CanonicalCodes canonicalize(const std::array<std::uint8_t, kSymbols>& lengths) {
  CanonicalCodes cc;
  cc.len = lengths;
  std::vector<int> order;
  for (int s = 0; s < kSymbols; ++s) {
    if (lengths[static_cast<std::size_t>(s)] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto la = lengths[static_cast<std::size_t>(a)];
    const auto lb = lengths[static_cast<std::size_t>(b)];
    return la != lb ? la < lb : a < b;
  });
  std::uint32_t code = 0;
  std::uint8_t prev_len = 0;
  for (int s : order) {
    const auto l = lengths[static_cast<std::size_t>(s)];
    code <<= (l - prev_len);
    cc.code[static_cast<std::size_t>(s)] = code;
    ++code;
    prev_len = l;
  }
  return cc;
}

}  // namespace

util::Bytes huffman_encode(util::BytesView input) {
  std::array<std::uint64_t, kSymbols> counts{};
  for (std::byte b : input) ++counts[static_cast<std::size_t>(b)];
  const auto lengths = code_lengths(counts);
  const auto cc = canonicalize(lengths);

  util::ByteWriter out;
  out.put_varint(input.size());
  // Table: (symbol, length) pairs for used symbols.
  int used = 0;
  for (auto l : lengths) {
    if (l > 0) ++used;
  }
  out.put_varint(static_cast<std::uint64_t>(used));
  for (int s = 0; s < kSymbols; ++s) {
    const auto l = lengths[static_cast<std::size_t>(s)];
    if (l > 0) {
      out.put(static_cast<std::uint8_t>(s));
      out.put(l);
    }
  }
  util::BitWriter bits;
  for (std::byte b : input) {
    const auto s = static_cast<std::size_t>(b);
    // Canonical codes are MSB-first by construction; emit bits reversed so
    // the LSB-first bit stream replays them in MSB order on read.
    const std::uint32_t code = cc.code[s];
    const unsigned len = cc.len[s];
    for (unsigned i = 0; i < len; ++i) {
      bits.write_bit(((code >> (len - 1 - i)) & 1u) != 0);
    }
  }
  out.put_vector(bits.finish());
  return out.take();
}

util::Bytes huffman_decode(util::BytesView input) {
  util::ByteReader in(input);
  const auto count = in.get_varint();
  const auto used = in.get_varint();
  std::array<std::uint8_t, kSymbols> lengths{};
  for (std::uint64_t i = 0; i < used; ++i) {
    const auto sym = in.get<std::uint8_t>();
    const auto len = in.get<std::uint8_t>();
    CANOPUS_CHECK(len >= 1 && len <= kMaxCodeLen, "huffman table corrupt");
    lengths[sym] = len;
  }
  const auto payload = in.get_vector<std::byte>();

  // Build canonical decode tables: for each length, first code and symbols.
  std::array<std::uint32_t, kMaxCodeLen + 2> first_code{};
  std::array<std::uint32_t, kMaxCodeLen + 2> first_index{};
  std::array<std::uint32_t, kMaxCodeLen + 2> level_count{};
  std::vector<int> order;
  for (int s = 0; s < kSymbols; ++s) {
    if (lengths[static_cast<std::size_t>(s)] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto la = lengths[static_cast<std::size_t>(a)];
    const auto lb = lengths[static_cast<std::size_t>(b)];
    return la != lb ? la < lb : a < b;
  });
  CANOPUS_CHECK(count == 0 || !order.empty(), "huffman stream missing table");
  for (int s : order) ++level_count[lengths[static_cast<std::size_t>(s)]];
  {
    std::uint32_t code = 0, index = 0;
    for (unsigned l = 1; l <= kMaxCodeLen; ++l) {
      code <<= 1;
      first_code[l] = code;
      first_index[l] = index;
      code += level_count[l];
      index += level_count[l];
    }
  }

  // Each symbol consumes at least one payload bit (pad word included).
  CANOPUS_CHECK(count <= payload.size() * 8 + 64, "huffman stream corrupt (count)");
  util::BitReader bits(payload);
  util::ByteWriter out;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t code = 0;
    unsigned len = 0;
    int sym = -1;
    while (len < kMaxCodeLen) {
      code = (code << 1) | (bits.read_bit() ? 1u : 0u);
      ++len;
      if (level_count[len] > 0 && code >= first_code[len] &&
          code < first_code[len] + level_count[len]) {
        sym = order[first_index[len] + (code - first_code[len])];
        break;
      }
    }
    CANOPUS_CHECK(sym >= 0, "huffman stream corrupt");
    out.put(static_cast<std::uint8_t>(sym));
  }
  return out.take();
}

}  // namespace canopus::compress
