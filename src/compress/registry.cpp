// Codec registry: adapts the standalone compressors to the Codec interface
// and exposes them by name. Byte-oriented lossless stages (lzss, huffman,
// rle, raw) treat the doubles as an 8-byte-per-value stream.

#include <cstring>
#include <functional>
#include <map>

#include "compress/codec.hpp"
#include "compress/fpc.hpp"
#include "compress/huffman.hpp"
#include "compress/lzss.hpp"
#include "compress/rle.hpp"
#include "compress/sz_like.hpp"
#include "compress/zfp_like.hpp"
#include "util/assert.hpp"

namespace canopus::compress {

namespace {

class ZfpCodec final : public Codec {
 public:
  std::string name() const override { return "zfp"; }
  bool lossless() const override { return false; }
  util::Bytes encode(std::span<const double> values, double bound) const override {
    return zfp_encode(values, bound);
  }
  std::vector<double> decode(util::BytesView bytes) const override {
    return zfp_decode(bytes);
  }
};

class SzCodec final : public Codec {
 public:
  std::string name() const override { return "sz"; }
  bool lossless() const override { return false; }
  util::Bytes encode(std::span<const double> values, double bound) const override {
    return sz_encode(values, bound);
  }
  std::vector<double> decode(util::BytesView bytes) const override {
    return sz_decode(bytes);
  }
};

class FpcCodec final : public Codec {
 public:
  std::string name() const override { return "fpc"; }
  bool lossless() const override { return true; }
  util::Bytes encode(std::span<const double> values, double /*bound*/) const override {
    return fpc_encode(values);
  }
  std::vector<double> decode(util::BytesView bytes) const override {
    return fpc_decode(bytes);
  }
};

/// Adapts a lossless bytes->bytes transform into a double codec.
class ByteStageCodec final : public Codec {
 public:
  using Fn = std::function<util::Bytes(util::BytesView)>;
  ByteStageCodec(std::string codec_name, Fn enc, Fn dec)
      : name_(std::move(codec_name)), enc_(std::move(enc)), dec_(std::move(dec)) {}

  std::string name() const override { return name_; }
  bool lossless() const override { return true; }

  util::Bytes encode(std::span<const double> values, double /*bound*/) const override {
    util::BytesView raw(reinterpret_cast<const std::byte*>(values.data()),
                        values.size() * sizeof(double));
    return enc_(raw);
  }
  std::vector<double> decode(util::BytesView bytes) const override {
    const util::Bytes raw = dec_(bytes);
    return util::from_bytes<double>(raw);
  }

 private:
  std::string name_;
  Fn enc_, dec_;
};

util::Bytes identity(util::BytesView in) {
  return util::Bytes(in.begin(), in.end());
}

/// Chains a double codec with lossless byte stages: "zfp+lzss" runs zfp's
/// output through lzss; "fpc+rle+huffman" stacks two entropy stages. The
/// chain is lossless iff the head codec is.
class PipelineCodec final : public Codec {
 public:
  PipelineCodec(std::string full_name, CodecPtr head,
                std::vector<std::string> stage_names)
      : name_(std::move(full_name)),
        head_(std::move(head)),
        stages_(std::move(stage_names)) {}

  std::string name() const override { return name_; }
  bool lossless() const override { return head_->lossless(); }

  util::Bytes encode(std::span<const double> values, double bound) const override {
    util::Bytes data = head_->encode(values, bound);
    for (const auto& stage : stages_) {
      data = stage_encode(stage, data);
    }
    return data;
  }

  std::vector<double> decode(util::BytesView bytes) const override {
    util::Bytes data(bytes.begin(), bytes.end());
    for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
      data = stage_decode(*it, data);
    }
    return head_->decode(data);
  }

 private:
  static util::Bytes stage_encode(const std::string& stage, util::BytesView in) {
    if (stage == "lzss") return lzss_encode(in);
    if (stage == "huffman") return huffman_encode(in);
    if (stage == "rle") return rle_encode(in);
    throw Error("unknown pipeline stage: " + stage);
  }
  static util::Bytes stage_decode(const std::string& stage, util::BytesView in) {
    if (stage == "lzss") return lzss_decode(in);
    if (stage == "huffman") return huffman_decode(in);
    if (stage == "rle") return rle_decode(in);
    throw Error("unknown pipeline stage: " + stage);
  }

  std::string name_;
  CodecPtr head_;
  std::vector<std::string> stages_;
};

using Factory = std::function<CodecPtr()>;

const std::map<std::string, Factory>& factories() {
  static const std::map<std::string, Factory> map = {
      {"zfp", [] { return CodecPtr(std::make_unique<ZfpCodec>()); }},
      {"sz", [] { return CodecPtr(std::make_unique<SzCodec>()); }},
      {"fpc", [] { return CodecPtr(std::make_unique<FpcCodec>()); }},
      {"lzss",
       [] {
         return CodecPtr(std::make_unique<ByteStageCodec>("lzss", lzss_encode,
                                                          lzss_decode));
       }},
      {"huffman",
       [] {
         return CodecPtr(std::make_unique<ByteStageCodec>(
             "huffman", huffman_encode, huffman_decode));
       }},
      {"rle",
       [] {
         return CodecPtr(std::make_unique<ByteStageCodec>("rle", rle_encode,
                                                          rle_decode));
       }},
      {"raw",
       [] {
         return CodecPtr(std::make_unique<ByteStageCodec>("raw", identity, identity));
       }},
  };
  return map;
}

}  // namespace

CodecPtr make_codec(const std::string& name) {
  // "head+stage+stage" composes a double codec with lossless byte stages.
  const auto plus = name.find('+');
  if (plus != std::string::npos) {
    const std::string head_name = name.substr(0, plus);
    CodecPtr head = make_codec(head_name);
    std::vector<std::string> stages;
    std::size_t pos = plus + 1;
    while (pos <= name.size()) {
      const auto next = name.find('+', pos);
      const auto stage = name.substr(pos, next - pos);
      CANOPUS_CHECK(stage == "lzss" || stage == "huffman" || stage == "rle",
                    "unknown pipeline stage: " + stage);
      stages.push_back(stage);
      if (next == std::string::npos) break;
      pos = next + 1;
    }
    CANOPUS_CHECK(!stages.empty(), "empty pipeline stage in codec: " + name);
    return std::make_unique<PipelineCodec>(name, std::move(head), std::move(stages));
  }
  auto it = factories().find(name);
  CANOPUS_CHECK(it != factories().end(), "unknown codec: " + name);
  return it->second();
}

std::vector<std::string> codec_names() {
  std::vector<std::string> names;
  for (const auto& [name, _] : factories()) names.push_back(name);
  return names;
}

}  // namespace canopus::compress
