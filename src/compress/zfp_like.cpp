#include "compress/zfp_like.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>

#include "util/assert.hpp"
#include "util/bitstream.hpp"
#include "util/simd.hpp"

#if CANOPUS_SIMD_X86
#include <immintrin.h>
#endif

namespace canopus::compress {

namespace {

constexpr std::size_t kBlock = detail::kZfpBlock;
// Fixed-point budget: |q| < 2^kQBits after scaling, leaving headroom for the
// transform's detail coefficients (|d| <= 2 * max|q|) inside int64.
constexpr int kQBits = 60;
// Plane-truncation safety: dropping planes below p gives per-coefficient
// error < 2^p; the inverse lifting amplifies it by at most 1.5x per level
// over log2(64) = 6 levels (1.5^6 ~ 11.4), so 4 extra planes (16x) below the
// naive cutoff bound the worst case. Property tests in compress_test.cpp
// verify the bound across smooth/rough/mixed-exponent signals.
constexpr int kSafetyPlanes = 4;

enum class BlockMode : std::uint8_t { kAllZero = 0, kNormal = 1, kRaw = 2 };

/// One forward lifting stage over a[0..len): pair (even, odd), emit sums then
/// details. Shared by the scalar path and the vector path's short tails.
void forward_stage_scalar(std::int64_t* a, std::int64_t* tmp, std::size_t len) {
  const std::size_t half = len / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const std::int64_t x = a[2 * i];
    const std::int64_t y = a[2 * i + 1];
    const std::int64_t d = x - y;
    const std::int64_t s = y + (d >> 1);  // floor((x + y) / 2)
    tmp[i] = s;
    tmp[half + i] = d;
  }
  std::copy(tmp, tmp + len, a);
}

void inverse_stage_scalar(std::int64_t* a, std::int64_t* tmp, std::size_t len) {
  const std::size_t half = len / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const std::int64_t s = a[i];
    const std::int64_t d = a[half + i];
    const std::int64_t y = s - (d >> 1);
    const std::int64_t x = y + d;
    tmp[2 * i] = x;
    tmp[2 * i + 1] = y;
  }
  std::copy(tmp, tmp + len, a);
}

void forward_transform_scalar(std::int64_t* a) {
  std::int64_t tmp[kBlock];
  for (std::size_t len = kBlock; len >= 2; len /= 2) {
    forward_stage_scalar(a, tmp, len);
  }
}

void inverse_transform_scalar(std::int64_t* a) {
  std::int64_t tmp[kBlock];
  for (std::size_t len = 2; len <= kBlock; len *= 2) {
    inverse_stage_scalar(a, tmp, len);
  }
}

#if CANOPUS_SIMD_X86
// AVX2 lifting: four (even, odd) pairs per step. All operations are 64-bit
// integer adds/subs plus an emulated arithmetic shift-right-by-one (AVX2 has
// no _mm256_srai_epi64), so every lane computes exactly the scalar
// expression and the transforms stay bitwise-identical and exactly
// invertible. Stages of length >= 8 vectorize; the len=4 and len=2 tails run
// the scalar pair loop.

__attribute__((target("avx2"))) inline __m256i sra1_epi64(__m256i v) {
  const __m256i sign = _mm256_set1_epi64x(static_cast<long long>(1ULL << 63));
  return _mm256_or_si256(_mm256_srli_epi64(v, 1), _mm256_and_si256(v, sign));
}

__attribute__((target("avx2"))) void forward_transform_avx2(std::int64_t* a) {
  alignas(32) std::int64_t tmp[kBlock];
  for (std::size_t len = kBlock; len >= 8; len /= 2) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; i += 4) {
      const __m256i v0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 2 * i));
      const __m256i v1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 2 * i + 4));
      // Deinterleave (a[2i], a[2i+1], ...) into even/odd quadruples.
      const __m256i ev = _mm256_permute4x64_epi64(
          _mm256_unpacklo_epi64(v0, v1), 0b11011000);
      const __m256i od = _mm256_permute4x64_epi64(
          _mm256_unpackhi_epi64(v0, v1), 0b11011000);
      const __m256i d = _mm256_sub_epi64(ev, od);
      const __m256i s = _mm256_add_epi64(od, sra1_epi64(d));
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp + i), s);
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp + half + i), d);
    }
    std::copy(tmp, tmp + len, a);
  }
  for (std::size_t len = 4; len >= 2; len /= 2) {
    forward_stage_scalar(a, tmp, len);
  }
}

__attribute__((target("avx2"))) void inverse_transform_avx2(std::int64_t* a) {
  alignas(32) std::int64_t tmp[kBlock];
  for (std::size_t len = 2; len <= 4; len *= 2) {
    inverse_stage_scalar(a, tmp, len);
  }
  for (std::size_t len = 8; len <= kBlock; len *= 2) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; i += 4) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + half + i));
      const __m256i y = _mm256_sub_epi64(s, sra1_epi64(d));
      const __m256i x = _mm256_add_epi64(y, d);
      // Re-interleave (x0, y0, x1, y1, ...).
      const __m256i lo = _mm256_unpacklo_epi64(x, y);  // x0 y0 x2 y2
      const __m256i hi = _mm256_unpackhi_epi64(x, y);  // x1 y1 x3 y3
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp + 2 * i),
                         _mm256_permute2x128_si256(lo, hi, 0x20));
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp + 2 * i + 4),
                         _mm256_permute2x128_si256(lo, hi, 0x31));
    }
    std::copy(tmp, tmp + len, a);
  }
}
#endif  // CANOPUS_SIMD_X86

void forward_transform(std::array<std::int64_t, kBlock>& a) {
  detail::forward_transform64(a.data());
}

void inverse_transform(std::array<std::int64_t, kBlock>& a) {
  detail::inverse_transform64(a.data());
}

/// Computes the lowest encoded bit plane for this block. Both sides derive it
/// from (tolerance, emax) so it is never stored.
int min_plane(double tolerance, int emax) {
  if (!(tolerance > 0.0)) return 0;
  // q = x * 2^(kQBits - emax); tolerance in q units is tol * 2^(kQBits-emax).
  const double tol_q = std::ldexp(tolerance, kQBits - emax);
  if (tol_q <= 1.0) return 0;
  const int p = static_cast<int>(std::floor(std::log2(tol_q))) - kSafetyPlanes;
  return std::clamp(p, 0, 62);
}

void encode_block(std::span<const double> vals, double tolerance,
                  util::ByteWriter& out, util::BitWriter& bits) {
  CANOPUS_ASSERT(!vals.empty() && vals.size() <= kBlock);
  double maxabs = 0.0;
  bool finite = true;
  for (double v : vals) {
    if (!std::isfinite(v)) {
      finite = false;
      break;
    }
    maxabs = std::max(maxabs, std::abs(v));
  }
  if (!finite) {
    out.put(static_cast<std::uint8_t>(BlockMode::kRaw));
    out.put_bytes(vals.data(), vals.size() * sizeof(double));
    return;
  }
  if (maxabs == 0.0) {
    out.put(static_cast<std::uint8_t>(BlockMode::kAllZero));
    return;
  }
  out.put(static_cast<std::uint8_t>(BlockMode::kNormal));
  const int emax = std::ilogb(maxabs) + 1;  // maxabs < 2^emax
  out.put(static_cast<std::int16_t>(emax));

  std::array<std::int64_t, kBlock> q{};
  const double scale = std::ldexp(1.0, kQBits - emax);
  for (std::size_t i = 0; i < kBlock; ++i) {
    // Pad a short tail block by repeating the last value (keeps it smooth).
    const double v = i < vals.size() ? vals[i] : vals.back();
    q[i] = std::llround(v * scale);
  }
  forward_transform(q);

  // Sign-magnitude coding: bit planes carry |q|; the sign is emitted once,
  // right after a coefficient's first 1 bit. (Plain zigzag would put the sign
  // in the lowest bit, which plane truncation destroys.)
  std::array<std::uint64_t, kBlock> u{};
  std::uint64_t any = 0;
  for (std::size_t i = 0; i < kBlock; ++i) {
    u[i] = static_cast<std::uint64_t>(q[i] < 0 ? -q[i] : q[i]);
    any |= u[i];
  }
  const int top_plane = any ? 63 - std::countl_zero(any) : 0;
  const int pmin = min_plane(tolerance, emax);
  out.put(static_cast<std::int8_t>(top_plane));

  std::array<bool, kBlock> sig{};
  auto emit_coeff_bit = [&](std::size_t i, int p) {
    const bool b = (u[i] >> p) & 1u;
    bits.write_bit(b);
    if (b && !sig[i]) {
      bits.write_bit(q[i] < 0);
      sig[i] = true;
    }
    return b;
  };

  // Embedded coding, MSB plane first. `prefix` is the number of leading
  // coefficients already inside the coded region; it only grows. Per plane we
  // emit bits for the prefix, then group-test the remainder.
  std::size_t prefix = 0;
  for (int p = top_plane; p >= pmin; --p) {
    for (std::size_t i = 0; i < prefix; ++i) emit_coeff_bit(i, p);
    std::size_t i = prefix;
    while (i < kBlock) {
      bool has = false;
      for (std::size_t j = i; j < kBlock; ++j) {
        if ((u[j] >> p) & 1u) {
          has = true;
          break;
        }
      }
      bits.write_bit(has);
      if (!has) break;
      // Emit bits up to and including the next set one; prefix grows past it.
      while (!emit_coeff_bit(i++, p)) {
      }
      prefix = i;
    }
  }
}

void decode_block(std::size_t n, double tolerance, util::ByteReader& in,
                  util::BitReader& bits, std::vector<double>& out) {
  const auto mode = static_cast<BlockMode>(in.get<std::uint8_t>());
  if (mode == BlockMode::kRaw) {
    auto raw = in.get_bytes(n * sizeof(double));
    const std::size_t base = out.size();
    out.resize(base + n);
    std::memcpy(out.data() + base, raw.data(), raw.size());
    return;
  }
  if (mode == BlockMode::kAllZero) {
    out.insert(out.end(), n, 0.0);
    return;
  }
  CANOPUS_CHECK(mode == BlockMode::kNormal, "zfp stream corrupt (mode)");
  const int emax = in.get<std::int16_t>();
  const int top_plane = in.get<std::int8_t>();
  CANOPUS_CHECK(top_plane >= 0 && top_plane <= 63, "zfp stream corrupt (plane)");
  const int pmin = min_plane(tolerance, emax);

  std::array<std::uint64_t, kBlock> u{};
  std::array<bool, kBlock> neg{};
  std::array<bool, kBlock> sig{};
  auto read_coeff_bit = [&](std::size_t i, int p) {
    const bool b = bits.read_bit();
    if (b) {
      u[i] |= std::uint64_t{1} << p;
      if (!sig[i]) {
        neg[i] = bits.read_bit();
        sig[i] = true;
      }
    }
    return b;
  };

  std::size_t prefix = 0;
  for (int p = top_plane; p >= pmin; --p) {
    for (std::size_t i = 0; i < prefix; ++i) read_coeff_bit(i, p);
    std::size_t i = prefix;
    while (i < kBlock) {
      if (!bits.read_bit()) break;
      for (;;) {
        CANOPUS_CHECK(i < kBlock, "zfp stream corrupt (prefix overrun)");
        if (read_coeff_bit(i++, p)) break;
      }
      prefix = i;
    }
  }

  std::array<std::int64_t, kBlock> q{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    const auto mag = static_cast<std::int64_t>(u[i]);
    q[i] = neg[i] ? -mag : mag;
  }
  inverse_transform(q);
  const double inv_scale = std::ldexp(1.0, emax - kQBits);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<double>(q[i]) * inv_scale);
  }
}

}  // namespace

util::Bytes zfp_encode(std::span<const double> values, double error_bound) {
  util::ByteWriter header;
  header.put_varint(values.size());
  header.put(error_bound);

  util::ByteWriter block_meta;
  util::BitWriter bits;
  for (std::size_t off = 0; off < values.size(); off += kBlock) {
    const std::size_t n = std::min(kBlock, values.size() - off);
    encode_block(values.subspan(off, n), error_bound, block_meta, bits);
  }
  header.put_vector(block_meta.bytes());
  header.put_vector(bits.finish());
  return header.take();
}

std::vector<double> zfp_decode(util::BytesView bytes) {
  util::ByteReader in(bytes);
  const auto count = in.get_varint();
  const double error_bound = in.get<double>();
  const auto block_meta = in.get_vector<std::byte>();
  const auto payload = in.get_vector<std::byte>();

  // Every block contributed at least its mode byte to the metadata stream.
  CANOPUS_CHECK((count + kBlock - 1) / kBlock <= block_meta.size(),
                "zfp stream corrupt (count)");
  util::ByteReader meta(block_meta);
  util::BitReader bits(payload);
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t off = 0; off < count; off += kBlock) {
    const std::size_t n = std::min(kBlock, static_cast<std::size_t>(count) - off);
    decode_block(n, error_bound, meta, bits, out);
  }
  return out;
}

namespace detail {

void forward_transform64(std::int64_t* a) {
#if CANOPUS_SIMD_X86
  if (util::simd::use_avx2()) {
    forward_transform_avx2(a);
    return;
  }
#endif
  forward_transform_scalar(a);
}

void inverse_transform64(std::int64_t* a) {
#if CANOPUS_SIMD_X86
  if (util::simd::use_avx2()) {
    inverse_transform_avx2(a);
    return;
  }
#endif
  inverse_transform_scalar(a);
}

}  // namespace detail

}  // namespace canopus::compress
