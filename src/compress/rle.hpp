#pragma once
// Byte run-length encoding (lossless): cheap stage for highly repetitive
// streams such as truncated bit-plane payloads and zero-heavy deltas.
//
// Format: varint total, then (count, byte) pairs with varint counts. Runs
// are split at 65536 so a corrupt pair can never demand an unbounded
// allocation: decode output is at most 32768x the remaining input.

#include "util/byte_buffer.hpp"

namespace canopus::compress {

util::Bytes rle_encode(util::BytesView input);
util::Bytes rle_decode(util::BytesView input);

}  // namespace canopus::compress
