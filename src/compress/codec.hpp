#pragma once
// Floating-point codec interface.
//
// Canopus compresses the refactored products (base level and deltas) with a
// pluggable floating-point compressor; the paper ships ZFP and plans SZ/FPC.
// All our codecs are implemented from scratch:
//
//   zfp   - transform + embedded bit-plane coder, fixed-accuracy (lossy)
//   sz    - predictive quantization + Huffman, error-bounded (lossy)
//   fpc   - FCM/DFCM predictor + leading-zero coding (lossless)
//   lzss  - dictionary coder over raw bytes (lossless)
//   huffman, rle, raw - entropy / trivial stages (lossless)
//
// Lossy codecs honor an absolute error bound; lossless codecs ignore it.
// Every encoded stream is self-describing: decode() needs only the bytes.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/byte_buffer.hpp"

namespace canopus::compress {

class Codec {
 public:
  virtual ~Codec() = default;

  virtual std::string name() const = 0;
  virtual bool lossless() const = 0;

  /// Encodes `values`; lossy codecs guarantee max |x - decode(x)| <= bound
  /// (bound <= 0 requests lossless behavior where supported).
  virtual util::Bytes encode(std::span<const double> values,
                             double error_bound) const = 0;

  /// Decodes a stream produced by this codec's encode().
  virtual std::vector<double> decode(util::BytesView bytes) const = 0;
};

using CodecPtr = std::unique_ptr<Codec>;

/// Instantiates a codec by registry name; throws Error for unknown names.
CodecPtr make_codec(const std::string& name);

/// Names available to make_codec, sorted.
std::vector<std::string> codec_names();

/// Compression ratio helper: uncompressed bytes / compressed bytes.
inline double ratio(std::size_t original_values, std::size_t compressed_bytes) {
  return compressed_bytes == 0
             ? 0.0
             : static_cast<double>(original_values * sizeof(double)) /
                   static_cast<double>(compressed_bytes);
}

}  // namespace canopus::compress
