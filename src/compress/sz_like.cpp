#include "compress/sz_like.hpp"

#include <cmath>
#include <cstring>

#include "compress/huffman.hpp"
#include "util/assert.hpp"
#include "util/simd.hpp"

#if CANOPUS_SIMD_X86
#include <immintrin.h>
#endif
#if CANOPUS_SIMD_NEON
#include <arm_neon.h>
#endif

namespace canopus::compress {

namespace {
// Quantization codes are bounded so a burst of noise cannot blow up the
// Huffman alphabet; anything beyond is stored raw.
constexpr std::int64_t kMaxCode = 1 << 20;
constexpr std::uint64_t kEscape = ~std::uint64_t{0};

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t u) {
  return static_cast<std::int64_t>(u >> 1) ^ -static_cast<std::int64_t>(u & 1);
}

void dequant_codes_scalar(const std::uint64_t* codes, std::size_t n,
                          double step, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(unzigzag(codes[i])) * step;
  }
}

#if CANOPUS_SIMD_X86
// Four lanes of unzigzag + int->double + scale. The conversion truncates each
// 64-bit code to its low dword before _mm256_cvtepi32_pd — exact for every
// code sz_encode emits (|q| <= kMaxCode = 2^20, so zigzag fits in 22 bits);
// escape lanes produce garbage that the caller never reads.
__attribute__((target("avx2"))) void dequant_codes_avx2(
    const std::uint64_t* codes, std::size_t n, double step, double* out) {
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i low_dwords = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m256d vstep = _mm256_set1_pd(step);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i u =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    const __m256i neg = _mm256_sub_epi64(zero, _mm256_and_si256(u, one));
    const __m256i q = _mm256_xor_si256(_mm256_srli_epi64(u, 1), neg);
    const __m128i q32 =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(q, low_dwords));
    const __m256d t = _mm256_mul_pd(_mm256_cvtepi32_pd(q32), vstep);
    _mm256_storeu_pd(out + i, t);
  }
  dequant_codes_scalar(codes + i, n - i, step, out + i);
}
#endif  // CANOPUS_SIMD_X86

#if CANOPUS_SIMD_NEON
void dequant_codes_neon(const std::uint64_t* codes, std::size_t n, double step,
                        double* out) {
  const uint64x2_t one = vdupq_n_u64(1);
  const float64x2_t vstep = vdupq_n_f64(step);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t u = vld1q_u64(codes + i);
    const int64x2_t neg =
        vnegq_s64(vreinterpretq_s64_u64(vandq_u64(u, one)));
    const int64x2_t q =
        veorq_s64(vreinterpretq_s64_u64(vshrq_n_u64(u, 1)), neg);
    vst1q_f64(out + i, vmulq_f64(vcvtq_f64_s64(q), vstep));
  }
  dequant_codes_scalar(codes + i, n - i, step, out + i);
}
#endif  // CANOPUS_SIMD_NEON
}  // namespace

util::Bytes sz_encode(std::span<const double> values, double error_bound) {
  util::ByteWriter header;
  header.put_varint(values.size());
  header.put(error_bound);

  if (!(error_bound > 0.0)) {
    // Lossless fallback: verbatim payload.
    header.put(static_cast<std::uint8_t>(0));
    header.put_bytes(values.data(), values.size() * sizeof(double));
    return header.take();
  }
  header.put(static_cast<std::uint8_t>(1));

  const double step = 2.0 * error_bound;
  util::ByteWriter codes;       // zigzag varints (kEscape marks raw value)
  util::ByteWriter raw_values;  // unpredictable doubles
  double prev = 0.0;            // decompressed previous value
  for (double x : values) {
    const double err = x - prev;
    const double qf = std::nearbyint(err / step);
    if (std::abs(qf) <= static_cast<double>(kMaxCode) && std::isfinite(qf)) {
      const auto q = static_cast<std::int64_t>(qf);
      const double rec = prev + static_cast<double>(q) * step;
      // Guard against floating-point rounding pushing past the bound.
      if (std::abs(rec - x) <= error_bound) {
        codes.put_varint(zigzag(q));
        prev = rec;
        continue;
      }
    }
    codes.put_varint(kEscape);
    raw_values.put(x);
    prev = x;
  }

  const util::Bytes packed = huffman_encode(codes.view());
  header.put_vector(packed);
  header.put_vector(raw_values.bytes());
  return header.take();
}

std::vector<double> sz_decode(util::BytesView bytes) {
  util::ByteReader in(bytes);
  const auto count = in.get_varint();
  const double error_bound = in.get<double>();
  const auto mode = in.get<std::uint8_t>();

  if (mode == 0) {
    // Verbatim payload: validate the length before allocating.
    CANOPUS_CHECK(count <= in.remaining() / sizeof(double),
                  "sz stream corrupt (count)");
    std::vector<double> out(count);
    auto raw = in.get_bytes(count * sizeof(double));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }
  CANOPUS_CHECK(mode == 1, "sz stream corrupt (mode)");

  const auto packed = in.get_vector<std::byte>();
  const auto raw_bytes = in.get_vector<std::byte>();
  const util::Bytes code_stream = huffman_decode(packed);
  // Every value consumed at least one code byte before entropy coding.
  CANOPUS_CHECK(count <= code_stream.size(), "sz stream corrupt (count)");
  std::vector<double> out(count);
  util::ByteReader codes(code_stream);
  util::ByteReader raws(raw_bytes);

  // Reconstruction is split so its data-parallel half can vectorize: parse
  // the varints, turn every code into its scaled increment in one wide pass,
  // then run the (inherently serial) Lorenzo prefix accumulation. The scalar
  // loop `prev += double(unzigzag(u)) * step` computes the same two roundings
  // in the same order, so the split is bitwise-neutral.
  const double step = 2.0 * error_bound;
  std::vector<std::uint64_t> parsed(count);
  for (std::size_t i = 0; i < count; ++i) parsed[i] = codes.get_varint();
  std::vector<double> increments(count);
  detail::dequant_codes(parsed.data(), count, step, increments.data());
  double prev = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    if (parsed[i] == kEscape) {
      prev = raws.get<double>();
    } else {
      prev += increments[i];
    }
    out[i] = prev;
  }
  return out;
}

namespace detail {

void dequant_codes(const std::uint64_t* codes, std::size_t n, double step,
                   double* out) {
#if CANOPUS_SIMD_X86
  if (util::simd::use_avx2()) {
    dequant_codes_avx2(codes, n, step, out);
    return;
  }
#endif
#if CANOPUS_SIMD_NEON
  if (util::simd::use_neon()) {
    dequant_codes_neon(codes, n, step, out);
    return;
  }
#endif
  dequant_codes_scalar(codes, n, step, out);
}

}  // namespace detail

}  // namespace canopus::compress
