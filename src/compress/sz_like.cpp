#include "compress/sz_like.hpp"

#include <cmath>
#include <cstring>

#include "compress/huffman.hpp"
#include "util/assert.hpp"

namespace canopus::compress {

namespace {
// Quantization codes are bounded so a burst of noise cannot blow up the
// Huffman alphabet; anything beyond is stored raw.
constexpr std::int64_t kMaxCode = 1 << 20;
constexpr std::uint64_t kEscape = ~std::uint64_t{0};

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t u) {
  return static_cast<std::int64_t>(u >> 1) ^ -static_cast<std::int64_t>(u & 1);
}
}  // namespace

util::Bytes sz_encode(std::span<const double> values, double error_bound) {
  util::ByteWriter header;
  header.put_varint(values.size());
  header.put(error_bound);

  if (!(error_bound > 0.0)) {
    // Lossless fallback: verbatim payload.
    header.put(static_cast<std::uint8_t>(0));
    header.put_bytes(values.data(), values.size() * sizeof(double));
    return header.take();
  }
  header.put(static_cast<std::uint8_t>(1));

  const double step = 2.0 * error_bound;
  util::ByteWriter codes;       // zigzag varints (kEscape marks raw value)
  util::ByteWriter raw_values;  // unpredictable doubles
  double prev = 0.0;            // decompressed previous value
  for (double x : values) {
    const double err = x - prev;
    const double qf = std::nearbyint(err / step);
    if (std::abs(qf) <= static_cast<double>(kMaxCode) && std::isfinite(qf)) {
      const auto q = static_cast<std::int64_t>(qf);
      const double rec = prev + static_cast<double>(q) * step;
      // Guard against floating-point rounding pushing past the bound.
      if (std::abs(rec - x) <= error_bound) {
        codes.put_varint(zigzag(q));
        prev = rec;
        continue;
      }
    }
    codes.put_varint(kEscape);
    raw_values.put(x);
    prev = x;
  }

  const util::Bytes packed = huffman_encode(codes.view());
  header.put_vector(packed);
  header.put_vector(raw_values.bytes());
  return header.take();
}

std::vector<double> sz_decode(util::BytesView bytes) {
  util::ByteReader in(bytes);
  const auto count = in.get_varint();
  const double error_bound = in.get<double>();
  const auto mode = in.get<std::uint8_t>();

  if (mode == 0) {
    // Verbatim payload: validate the length before allocating.
    CANOPUS_CHECK(count <= in.remaining() / sizeof(double),
                  "sz stream corrupt (count)");
    std::vector<double> out(count);
    auto raw = in.get_bytes(count * sizeof(double));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }
  CANOPUS_CHECK(mode == 1, "sz stream corrupt (mode)");

  const auto packed = in.get_vector<std::byte>();
  const auto raw_bytes = in.get_vector<std::byte>();
  const util::Bytes code_stream = huffman_decode(packed);
  // Every value consumed at least one code byte before entropy coding.
  CANOPUS_CHECK(count <= code_stream.size(), "sz stream corrupt (count)");
  std::vector<double> out(count);
  util::ByteReader codes(code_stream);
  util::ByteReader raws(raw_bytes);

  const double step = 2.0 * error_bound;
  double prev = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = codes.get_varint();
    if (u == kEscape) {
      prev = raws.get<double>();
    } else {
      prev += static_cast<double>(unzigzag(u)) * step;
    }
    out[i] = prev;
  }
  return out;
}

}  // namespace canopus::compress
