#pragma once
// LZSS dictionary compression over raw bytes (lossless).
//
// 32 KiB sliding window, 3-byte minimum match, hash-chain match finder.
// Token stream: flag bits grouped 8 per byte; a set flag introduces a
// (offset, length) back-reference, a clear flag a literal byte.

#include "util/byte_buffer.hpp"

namespace canopus::compress {

util::Bytes lzss_encode(util::BytesView input);
util::Bytes lzss_decode(util::BytesView input);

}  // namespace canopus::compress
