#pragma once
// Canonical Huffman coding over byte symbols.
//
// Used standalone (entropy stage for byte streams) and as the back end of the
// SZ-like codec's quantization-code stream. Code lengths are limited to 30
// bits by count-scaling so the decoder's canonical tables stay small.

#include "util/byte_buffer.hpp"

namespace canopus::compress {

/// Encodes arbitrary bytes; the stream embeds the code table and length.
util::Bytes huffman_encode(util::BytesView input);

/// Decodes a stream produced by huffman_encode.
util::Bytes huffman_decode(util::BytesView input);

}  // namespace canopus::compress
