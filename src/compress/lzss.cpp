#include "compress/lzss.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace canopus::compress {

namespace {
constexpr std::size_t kWindow = 32 * 1024;
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 258;
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kMaxChain = 64;

inline std::uint32_t hash3(const std::byte* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}
}  // namespace

util::Bytes lzss_encode(util::BytesView input) {
  util::ByteWriter out;
  out.put_varint(input.size());

  std::vector<std::int64_t> head(std::size_t{1} << kHashBits, -1);
  std::vector<std::int64_t> prev(input.size(), -1);

  std::vector<std::byte> tokens;  // token payload bytes
  std::vector<bool> flags;        // one per token: true = match

  std::size_t pos = 0;
  auto insert_hash = [&](std::size_t p) {
    if (p + kMinMatch <= input.size()) {
      const auto h = hash3(input.data() + p);
      prev[p] = head[h];
      head[h] = static_cast<std::int64_t>(p);
    }
  };

  while (pos < input.size()) {
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    if (pos + kMinMatch <= input.size()) {
      const auto h = hash3(input.data() + pos);
      std::int64_t cand = head[h];
      std::size_t chain = 0;
      while (cand >= 0 && chain < kMaxChain) {
        const auto c = static_cast<std::size_t>(cand);
        if (pos - c <= kWindow) {
          const std::size_t limit = std::min(kMaxMatch, input.size() - pos);
          std::size_t len = 0;
          while (len < limit && input[c + len] == input[pos + len]) ++len;
          if (len >= kMinMatch && len > best_len) {
            best_len = len;
            best_off = pos - c;
            if (len == kMaxMatch) break;
          }
        } else {
          break;  // chains are in decreasing position; older is further away
        }
        cand = prev[c];
        ++chain;
      }
    }
    if (best_len >= kMinMatch) {
      flags.push_back(true);
      tokens.push_back(static_cast<std::byte>(best_off & 0xFF));
      tokens.push_back(static_cast<std::byte>((best_off >> 8) & 0xFF));
      tokens.push_back(static_cast<std::byte>(best_len - kMinMatch));
      for (std::size_t k = 0; k < best_len; ++k) insert_hash(pos + k);
      pos += best_len;
    } else {
      flags.push_back(false);
      tokens.push_back(input[pos]);
      insert_hash(pos);
      ++pos;
    }
  }

  out.put_varint(flags.size());
  // Pack flags 8 per byte, LSB first.
  std::uint8_t acc = 0;
  int fill = 0;
  for (bool f : flags) {
    if (f) acc |= static_cast<std::uint8_t>(1u << fill);
    if (++fill == 8) {
      out.put(acc);
      acc = 0;
      fill = 0;
    }
  }
  if (fill > 0) out.put(acc);
  out.put_bytes(tokens.data(), tokens.size());
  return out.take();
}

util::Bytes lzss_decode(util::BytesView input) {
  util::ByteReader in(input);
  const auto total = in.get_varint();
  const auto ntokens = in.get_varint();
  CANOPUS_CHECK(ntokens / 8 <= in.remaining(), "lzss stream corrupt (tokens)");
  // Each token yields at most kMaxMatch output bytes.
  CANOPUS_CHECK(total <= ntokens * kMaxMatch, "lzss stream corrupt (length)");
  const auto flag_bytes = in.get_bytes((ntokens + 7) / 8);

  util::ByteWriter out_writer(total);
  std::vector<std::byte> out;
  out.reserve(total);
  for (std::uint64_t t = 0; t < ntokens; ++t) {
    const bool is_match =
        (static_cast<std::uint8_t>(flag_bytes[t / 8]) >> (t % 8)) & 1u;
    if (is_match) {
      const auto lo = static_cast<std::size_t>(in.get<std::uint8_t>());
      const auto hi = static_cast<std::size_t>(in.get<std::uint8_t>());
      const std::size_t off = lo | (hi << 8);
      const std::size_t len = static_cast<std::size_t>(in.get<std::uint8_t>()) + kMinMatch;
      CANOPUS_CHECK(off > 0 && off <= out.size(), "lzss stream corrupt (offset)");
      for (std::size_t k = 0; k < len; ++k) {
        out.push_back(out[out.size() - off]);
      }
    } else {
      out.push_back(in.get<std::byte>());
    }
  }
  CANOPUS_CHECK(out.size() == total, "lzss stream corrupt (length)");
  out_writer.put_bytes(out.data(), out.size());
  return out_writer.take();
}

}  // namespace canopus::compress
