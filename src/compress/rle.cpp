#include "compress/rle.hpp"

#include "util/assert.hpp"

namespace canopus::compress {

namespace {
constexpr std::size_t kMaxRun = 65536;
}

util::Bytes rle_encode(util::BytesView input) {
  util::ByteWriter out;
  out.put_varint(input.size());
  std::size_t i = 0;
  while (i < input.size()) {
    std::size_t run = 1;
    while (i + run < input.size() && input[i + run] == input[i] &&
           run < kMaxRun) {
      ++run;
    }
    out.put_varint(run);
    out.put(input[i]);
    i += run;
  }
  return out.take();
}

util::Bytes rle_decode(util::BytesView input) {
  util::ByteReader in(input);
  const auto total = in.get_varint();
  // Structural bound: every (run, byte) pair occupies >= 2 input bytes and
  // contributes <= kMaxRun output bytes, so a corrupt header can never force
  // an allocation beyond 32768x the stream that backs it.
  CANOPUS_CHECK(total <= in.remaining() / 2 * kMaxRun + kMaxRun,
                "rle stream corrupt (length)");
  util::ByteWriter out(std::min<std::uint64_t>(total, 1 << 20));
  std::size_t produced = 0;
  while (produced < total) {
    const auto run = in.get_varint();
    CANOPUS_CHECK(run > 0 && run <= kMaxRun && produced + run <= total,
                  "rle stream corrupt");
    const auto b = in.get<std::byte>();
    for (std::uint64_t k = 0; k < run; ++k) out.put(b);
    produced += run;
  }
  return out.take();
}

}  // namespace canopus::compress
