#pragma once
// FPC-style lossless double compressor (Burtscher & Ratanaworabhan, 2009).
//
// Two hash-table predictors — FCM (last value seen in this context) and DFCM
// (last stride seen in this context) — race per value; the winner's
// prediction is XORed with the actual bits and the leading zero bytes are
// elided. Entirely lossless, fast, and effective on smooth time series.

#include <span>
#include <vector>

#include "util/byte_buffer.hpp"

namespace canopus::compress {

/// table_bits selects predictor table size (2^table_bits entries).
util::Bytes fpc_encode(std::span<const double> values, unsigned table_bits = 16);
std::vector<double> fpc_decode(util::BytesView bytes);

}  // namespace canopus::compress
