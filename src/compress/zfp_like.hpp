#pragma once
// ZFP-style fixed-accuracy transform codec (Lindstrom, TVCG 2014 lineage),
// re-implemented from scratch for 1-D value streams.
//
// Values are processed in blocks of 64. Each block is aligned to a common
// exponent and scaled to 64-bit fixed point, decorrelated with an integer
// Haar lifting transform (coarse-to-fine coefficient layout), mapped to
// unsigned magnitudes via zigzag, and entropy-coded MSB-plane-first with
// zfp's prefix group-testing scheme. Bit planes below the requested accuracy
// are truncated — that single knob trades size for error, and smoother input
// (e.g. Canopus deltas) concentrates energy in fewer coefficients, which is
// exactly the pre-conditioning effect Fig. 5 of the paper measures.
//
// An error bound <= 0 keeps every plane: reconstruction is then exact up to
// the fixed-point quantization (relative ~1e-17), but not bit-identical, so
// the codec always reports itself lossy.

#include <span>
#include <vector>

#include "util/byte_buffer.hpp"

namespace canopus::compress {

util::Bytes zfp_encode(std::span<const double> values, double error_bound);
std::vector<double> zfp_decode(util::BytesView bytes);

namespace detail {
/// The block size of the Haar lifting transform below.
inline constexpr std::size_t kZfpBlock = 64;

/// Forward/inverse integer Haar lifting over one 64-coefficient block, in
/// place. Dispatches to the AVX2 lane variant when util::simd allows it;
/// both paths are exactly invertible and bitwise-identical. Exposed so
/// micro_kernels can time the transform alone (inside zfp_encode it is
/// diluted by the bit-plane coder) and compress_test can pin scalar == simd.
void forward_transform64(std::int64_t* a);
void inverse_transform64(std::int64_t* a);
}  // namespace detail

}  // namespace canopus::compress
