#pragma once
// SZ-style error-bounded lossy compressor (Di & Cappello, IPDPS'16 lineage).
//
// Each value is predicted from the *decompressed* previous value (1-D Lorenzo
// predictor); the prediction error is quantized to an integer code with step
// 2*eb so reconstruction error stays <= eb. Codes are zigzag-varint packed and
// Huffman-coded; values whose code would overflow the code range are stored
// verbatim ("unpredictable"). eb <= 0 degrades gracefully to verbatim storage
// (lossless).

#include <span>
#include <vector>

#include "util/byte_buffer.hpp"

namespace canopus::compress {

util::Bytes sz_encode(std::span<const double> values, double error_bound);
std::vector<double> sz_decode(util::BytesView bytes);

}  // namespace canopus::compress
