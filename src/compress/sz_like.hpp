#pragma once
// SZ-style error-bounded lossy compressor (Di & Cappello, IPDPS'16 lineage).
//
// Each value is predicted from the *decompressed* previous value (1-D Lorenzo
// predictor); the prediction error is quantized to an integer code with step
// 2*eb so reconstruction error stays <= eb. Codes are zigzag-varint packed and
// Huffman-coded; values whose code would overflow the code range are stored
// verbatim ("unpredictable"). eb <= 0 degrades gracefully to verbatim storage
// (lossless).

#include <span>
#include <vector>

#include "util/byte_buffer.hpp"

namespace canopus::compress {

util::Bytes sz_encode(std::span<const double> values, double error_bound);
std::vector<double> sz_decode(util::BytesView bytes);

namespace detail {
/// The data-parallel half of sz_decode's reconstruction:
///   out[i] = double(unzigzag(codes[i])) * step
/// for every lane (escape markers included — their output is ignored by the
/// caller). The scalar prefix accumulation `prev += out[i]` stays serial by
/// design (loop-carried Lorenzo prediction). Dispatches per util::simd; all
/// paths are bitwise-identical because sz codes are bounded (|q| <= 2^20), so
/// the int->double conversion is exact in every lane width. Exposed for
/// micro_kernels and the compress determinism tests.
void dequant_codes(const std::uint64_t* codes, std::size_t n, double step,
                   double* out);
}  // namespace detail

}  // namespace canopus::compress
