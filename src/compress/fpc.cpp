#include "compress/fpc.hpp"

#include <bit>
#include <cstring>

#include "util/assert.hpp"

namespace canopus::compress {

namespace {

struct Predictors {
  explicit Predictors(unsigned table_bits)
      : mask((std::size_t{1} << table_bits) - 1),
        fcm(mask + 1, 0),
        dfcm(mask + 1, 0) {}

  std::uint64_t predict_fcm() const { return fcm[fcm_hash]; }
  std::uint64_t predict_dfcm() const { return dfcm[dfcm_hash] + last; }

  void update(std::uint64_t actual) {
    fcm[fcm_hash] = actual;
    fcm_hash = ((fcm_hash << 6) ^ (actual >> 48)) & mask;
    const std::uint64_t stride = actual - last;
    dfcm[dfcm_hash] = stride;
    dfcm_hash = ((dfcm_hash << 2) ^ (stride >> 40)) & mask;
    last = actual;
  }

  std::size_t mask;
  std::vector<std::uint64_t> fcm, dfcm;
  std::size_t fcm_hash = 0, dfcm_hash = 0;
  std::uint64_t last = 0;
};

inline unsigned leading_zero_bytes(std::uint64_t x) {
  if (x == 0) return 8;
  return static_cast<unsigned>(std::countl_zero(x)) / 8;
}

// As in the FPC paper, the 3-bit count field maps to {0,1,2,3,5,6,7,8}
// leading zero bytes; an actual count of 4 is demoted to 3 (one extra tail
// byte) so a fully predicted value costs zero tail bytes.
constexpr std::array<unsigned, 8> kCodeToLzb{0, 1, 2, 3, 5, 6, 7, 8};

inline unsigned lzb_to_code(unsigned lzb) {
  if (lzb == 4) return 3;
  return lzb < 4 ? lzb : lzb - 1;
}

}  // namespace

util::Bytes fpc_encode(std::span<const double> values, unsigned table_bits) {
  CANOPUS_CHECK(table_bits >= 4 && table_bits <= 24, "fpc table_bits out of range");
  Predictors p(table_bits);
  util::ByteWriter out(values.size() * 5);
  out.put_varint(values.size());
  out.put(static_cast<std::uint8_t>(table_bits));

  // Per value: header nibble = (predictor bit << 3) | min(lzb, 7),
  // two headers packed per byte, followed by the value-residual tails.
  std::vector<std::uint8_t> headers((values.size() + 1) / 2, 0);
  util::ByteWriter tails(values.size() * 4);
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &values[i], sizeof(bits));
    const std::uint64_t f = p.predict_fcm();
    const std::uint64_t d = p.predict_dfcm();
    const std::uint64_t xf = bits ^ f;
    const std::uint64_t xd = bits ^ d;
    const bool use_dfcm = leading_zero_bytes(xd) > leading_zero_bytes(xf);
    const std::uint64_t residual = use_dfcm ? xd : xf;
    const unsigned code = lzb_to_code(leading_zero_bytes(residual));
    const unsigned lzb = kCodeToLzb[code];
    const auto nibble =
        static_cast<std::uint8_t>((use_dfcm ? 0x8 : 0x0) | code);
    if (i % 2 == 0) {
      headers[i / 2] = nibble;
    } else {
      headers[i / 2] |= static_cast<std::uint8_t>(nibble << 4);
    }
    const unsigned tail_bytes = 8 - lzb;
    for (unsigned b = 0; b < tail_bytes; ++b) {
      tails.put(static_cast<std::uint8_t>((residual >> (8 * b)) & 0xFF));
    }
    p.update(bits);
  }
  out.put_bytes(headers.data(), headers.size());
  out.put_bytes(tails.view());
  return out.take();
}

std::vector<double> fpc_decode(util::BytesView bytes) {
  util::ByteReader in(bytes);
  const auto count = in.get_varint();
  const auto table_bits = in.get<std::uint8_t>();
  CANOPUS_CHECK(table_bits >= 4 && table_bits <= 24, "fpc stream corrupt");
  CANOPUS_CHECK(count / 2 <= in.remaining(), "fpc stream corrupt (count)");
  Predictors p(table_bits);
  const auto headers = in.get_bytes((count + 1) / 2);

  std::vector<double> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto packed = static_cast<std::uint8_t>(headers[i / 2]);
    const auto nibble = static_cast<std::uint8_t>(i % 2 == 0 ? packed & 0xF : packed >> 4);
    const bool use_dfcm = (nibble & 0x8) != 0;
    const unsigned lzb = kCodeToLzb[nibble & 0x7];
    const unsigned tail_bytes = 8 - lzb;
    std::uint64_t residual = 0;
    for (unsigned b = 0; b < tail_bytes; ++b) {
      residual |= static_cast<std::uint64_t>(in.get<std::uint8_t>()) << (8 * b);
    }
    const std::uint64_t pred = use_dfcm ? p.predict_dfcm() : p.predict_fcm();
    const std::uint64_t bits = residual ^ pred;
    std::memcpy(&out[i], &bits, sizeof(bits));
    p.update(bits);
  }
  return out;
}

}  // namespace canopus::compress
