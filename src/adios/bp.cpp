#include "adios/bp.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/timer.hpp"

namespace canopus::adios {

namespace {
constexpr std::uint32_t kMagic = 0x43424631;  // "CBF1" Canopus BP format v1

std::string block_key(const std::string& path, const BlockRecord& r) {
  return path + "/" + r.var + "/" + to_string(r.kind) + "/l" +
         std::to_string(r.level) + "/c" + std::to_string(r.chunk);
}
}  // namespace

std::string to_string(BlockKind kind) {
  switch (kind) {
    case BlockKind::kBase: return "base";
    case BlockKind::kDelta: return "delta";
    case BlockKind::kMesh: return "mesh";
    case BlockKind::kMapping: return "mapping";
    case BlockKind::kData: return "data";
    case BlockKind::kChunkIndex: return "chunkindex";
  }
  CANOPUS_UNREACHABLE("unknown block kind");
}

void BlockRecord::serialize(util::ByteWriter& out) const {
  out.put_string(var);
  out.put(static_cast<std::uint8_t>(kind));
  out.put(level);
  out.put(chunk);
  out.put(chunk_count);
  out.put_string(codec);
  out.put(error_bound);
  out.put_varint(value_count);
  out.put_varint(raw_bytes);
  out.put_varint(stored_bytes);
  out.put(tier);
  out.put_string(object_key);
}

BlockRecord BlockRecord::deserialize(util::ByteReader& in) {
  BlockRecord r;
  r.var = in.get_string();
  const auto kind = in.get<std::uint8_t>();
  CANOPUS_CHECK(kind <= static_cast<std::uint8_t>(BlockKind::kChunkIndex),
                "bp metadata corrupt (kind)");
  r.kind = static_cast<BlockKind>(kind);
  r.level = in.get<std::uint32_t>();
  r.chunk = in.get<std::uint32_t>();
  r.chunk_count = in.get<std::uint32_t>();
  r.codec = in.get_string();
  r.error_bound = in.get<double>();
  r.value_count = in.get_varint();
  r.raw_bytes = in.get_varint();
  r.stored_bytes = in.get_varint();
  r.tier = in.get<std::uint32_t>();
  r.object_key = in.get_string();
  return r;
}

std::vector<std::uint32_t> VarInfo::levels(BlockKind kind) const {
  std::vector<std::uint32_t> out;
  for (const auto& b : blocks) {
    if (b.kind == kind) out.push_back(b.level);
  }
  std::sort(out.begin(), out.end());
  return out;
}

const BlockRecord* VarInfo::block(BlockKind kind, std::uint32_t level) const& {
  for (const auto& b : blocks) {
    if (b.kind == kind && b.level == level) return &b;
  }
  return nullptr;
}

std::string metadata_key(const std::string& path) { return path + "/.bpmeta"; }

// ----------------------------------------------------------------- Writer --

BpWriter::BpWriter(storage::StorageHierarchy& hierarchy, std::string path)
    : hierarchy_(hierarchy), path_(std::move(path)) {
  CANOPUS_CHECK(!path_.empty(), "bp path must be non-empty");
}

BpWriter::~BpWriter() {
  // Closing in the destructor would swallow errors; an unclosed writer's
  // blocks stay in the hierarchy but the container is simply not readable.
}

WriteTiming BpWriter::store(BlockRecord record, util::BytesView payload,
                            std::optional<std::uint32_t> tier_hint) {
  CANOPUS_CHECK(!closed_, "bp writer already closed");
  // One record per (var, kind, level): replace on rewrite.
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [&](const BlockRecord& r) {
                                  return r.var == record.var &&
                                         r.kind == record.kind &&
                                         r.level == record.level &&
                                         r.chunk == record.chunk;
                                }),
                 records_.end());
  record.object_key = block_key(path_, record);
  record.stored_bytes = payload.size();

  WriteTiming t;
  storage::IoResult io;
  if (tier_hint.has_value()) {
    record.tier = *tier_hint;
    io = hierarchy_.write_to(*tier_hint, record.object_key, payload);
  } else {
    auto [tier, result] = hierarchy_.place(record.object_key, payload);
    record.tier = static_cast<std::uint32_t>(tier);
    io = result;
  }
  // Base datasets are the anchor of every progressive read; keep a replica
  // one tier down so a failing fast tier degrades instead of blocking.
  if (record.kind == BlockKind::kBase) {
    hierarchy_.replicate_below(record.tier, record.object_key, payload, &io);
  }
  t.io_sim_seconds = io.sim_seconds;
  t.io_wall_seconds = io.wall_seconds;
  t.bytes_written = io.bytes;
  t.tier = record.tier;
  records_.push_back(std::move(record));
  return t;
}

WriteTiming BpWriter::write_doubles(const std::string& var, BlockKind kind,
                                    std::uint32_t level,
                                    std::span<const double> values,
                                    const std::string& codec_name,
                                    double error_bound,
                                    std::optional<std::uint32_t> tier_hint) {
  return write_doubles_chunk(var, kind, level, 0, 1, values, codec_name,
                             error_bound, tier_hint);
}

WriteTiming BpWriter::write_doubles_chunk(const std::string& var, BlockKind kind,
                                          std::uint32_t level, std::uint32_t chunk,
                                          std::uint32_t chunk_count,
                                          std::span<const double> values,
                                          const std::string& codec_name,
                                          double error_bound,
                                          std::optional<std::uint32_t> tier_hint) {
  CANOPUS_CHECK(chunk < chunk_count, "chunk index out of range");
  BlockRecord r;
  r.var = var;
  r.kind = kind;
  r.level = level;
  r.chunk = chunk;
  r.chunk_count = chunk_count;
  r.codec = codec_name;
  r.error_bound = error_bound;
  r.value_count = values.size();
  r.raw_bytes = values.size() * sizeof(double);

  util::WallTimer timer;
  const auto codec = compress::make_codec(codec_name);
  const util::Bytes payload = codec->encode(values, error_bound);
  const double compress_seconds = timer.seconds();

  WriteTiming t = store(std::move(r), payload, tier_hint);
  t.compress_seconds = compress_seconds;
  return t;
}

WriteTiming BpWriter::write_precompressed(const std::string& var, BlockKind kind,
                                          std::uint32_t level,
                                          util::BytesView payload,
                                          const std::string& codec_name,
                                          double error_bound,
                                          std::uint64_t value_count,
                                          std::optional<std::uint32_t> tier_hint) {
  return write_precompressed_chunk(var, kind, level, 0, 1, payload, codec_name,
                                   error_bound, value_count, tier_hint);
}

WriteTiming BpWriter::write_precompressed_chunk(
    const std::string& var, BlockKind kind, std::uint32_t level,
    std::uint32_t chunk, std::uint32_t chunk_count, util::BytesView payload,
    const std::string& codec_name, double error_bound, std::uint64_t value_count,
    std::optional<std::uint32_t> tier_hint) {
  CANOPUS_CHECK(chunk < chunk_count, "chunk index out of range");
  BlockRecord r;
  r.var = var;
  r.kind = kind;
  r.level = level;
  r.chunk = chunk;
  r.chunk_count = chunk_count;
  r.codec = codec_name;
  r.error_bound = error_bound;
  r.value_count = value_count;
  r.raw_bytes = value_count * sizeof(double);
  return store(std::move(r), payload, tier_hint);
}

WriteTiming BpWriter::write_opaque(const std::string& var, BlockKind kind,
                                   std::uint32_t level, util::BytesView bytes,
                                   std::optional<std::uint32_t> tier_hint) {
  BlockRecord r;
  r.var = var;
  r.kind = kind;
  r.level = level;
  r.codec = "none";
  r.raw_bytes = bytes.size();
  return store(std::move(r), bytes, tier_hint);
}

void BpWriter::set_attribute(const std::string& name, const std::string& value) {
  CANOPUS_CHECK(!closed_, "bp writer already closed");
  attributes_[name] = value;
}

void BpWriter::close() {
  CANOPUS_CHECK(!closed_, "bp writer already closed");
  util::ByteWriter meta;
  meta.put(kMagic);
  meta.put_varint(records_.size());
  for (const auto& r : records_) r.serialize(meta);
  meta.put_varint(attributes_.size());
  for (const auto& [k, v] : attributes_) {
    meta.put_string(k);
    meta.put_string(v);
  }
  // The metadata object is a single point of failure for the whole container;
  // replicate it like a base block.
  hierarchy_.place_with_replica(metadata_key(path_), meta.view());
  closed_ = true;
}

// ----------------------------------------------------------------- Reader --

BpReader::BpReader(storage::StorageHierarchy& hierarchy, std::string path)
    : hierarchy_(hierarchy), path_(std::move(path)) {
  util::Bytes meta_bytes;
  hierarchy_.read(metadata_key(path_), meta_bytes);
  util::ByteReader meta(meta_bytes);
  CANOPUS_CHECK(meta.get<std::uint32_t>() == kMagic, "not a canopus bp container");
  const auto nrecords = meta.get_varint();
  records_.reserve(nrecords);
  for (std::uint64_t i = 0; i < nrecords; ++i) {
    records_.push_back(BlockRecord::deserialize(meta));
  }
  const auto nattrs = meta.get_varint();
  for (std::uint64_t i = 0; i < nattrs; ++i) {
    const auto k = meta.get_string();
    attributes_[k] = meta.get_string();
  }
}

std::vector<std::string> BpReader::variables() const {
  std::vector<std::string> names;
  for (const auto& r : records_) {
    if (std::find(names.begin(), names.end(), r.var) == names.end()) {
      names.push_back(r.var);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

VarInfo BpReader::inq_var(const std::string& var) const {
  VarInfo info;
  info.var = var;
  for (const auto& r : records_) {
    if (r.var == var) info.blocks.push_back(r);
  }
  CANOPUS_CHECK(!info.blocks.empty(), "variable '" + var + "' not in container");
  return info;
}

const BlockRecord& BpReader::find_record(const std::string& var, BlockKind kind,
                                         std::uint32_t level,
                                         std::uint32_t chunk) const {
  for (const auto& r : records_) {
    if (r.var == var && r.kind == kind && r.level == level && r.chunk == chunk) {
      return r;
    }
  }
  throw Error("block not found: " + var + "/" + to_string(kind) + "/l" +
              std::to_string(level) + "/c" + std::to_string(chunk));
}

std::vector<double> BpReader::read_doubles(const std::string& var, BlockKind kind,
                                           std::uint32_t level,
                                           ReadTiming* timing) const {
  return read_doubles_chunk(var, kind, level, 0, timing);
}

BpReader::RawChunk BpReader::fetch_chunk(const std::string& var, BlockKind kind,
                                         std::uint32_t level,
                                         std::uint32_t chunk) const {
  const auto& r = find_record(var, kind, level, chunk);
  CANOPUS_CHECK(r.codec != "none", "block is opaque; use read_opaque");
  RawChunk raw;
  raw.record = r;
  const auto io = hierarchy_.read(r.object_key, raw.payload);
  raw.io.io_sim_seconds = io.sim_seconds;
  raw.io.io_wall_seconds = io.wall_seconds;
  raw.io.bytes_read = io.bytes;
  raw.io.retries = io.retries;
  raw.io.corruptions = io.corruptions;
  raw.io.from_replica = io.from_replica;
  return raw;
}

std::vector<double> BpReader::decode_chunk(const BlockRecord& record,
                                           util::BytesView payload,
                                           double* decompress_seconds) {
  util::WallTimer timer;
  const auto codec = compress::make_codec(record.codec);
  auto values = codec->decode(payload);
  CANOPUS_CHECK(values.size() == record.value_count, "bp block corrupt (count)");
  if (decompress_seconds) *decompress_seconds += timer.seconds();
  return values;
}

std::vector<double> BpReader::read_doubles_chunk(const std::string& var,
                                                 BlockKind kind,
                                                 std::uint32_t level,
                                                 std::uint32_t chunk,
                                                 ReadTiming* timing) const {
  const auto raw = fetch_chunk(var, kind, level, chunk);
  double decompress = 0.0;
  auto values = decode_chunk(raw.record, raw.payload, &decompress);
  if (timing) {
    *timing = raw.io;
    timing->decompress_seconds = decompress;
  }
  return values;
}

util::Bytes BpReader::read_opaque(const std::string& var, BlockKind kind,
                                  std::uint32_t level, ReadTiming* timing) const {
  const auto& r = find_record(var, kind, level, 0);
  util::Bytes payload;
  const auto io = hierarchy_.read(r.object_key, payload);
  if (timing) {
    timing->io_sim_seconds = io.sim_seconds;
    timing->io_wall_seconds = io.wall_seconds;
    timing->bytes_read = io.bytes;
    timing->retries = io.retries;
    timing->corruptions = io.corruptions;
    timing->from_replica = io.from_replica;
  }
  return payload;
}

std::optional<std::string> BpReader::attribute(const std::string& name) const {
  auto it = attributes_.find(name);
  if (it == attributes_.end()) return std::nullopt;
  return it->second;
}

}  // namespace canopus::adios
