#pragma once
// ADIOS-like self-describing container ("BP" format) over a storage hierarchy.
//
// Canopus is implemented in the paper as an ADIOS transport: simulations call
// the declarative write API, analytics call the query/read API
// (adios_inq_var / adios_read_var), and a metadata-rich binary-packed format
// tracks where each refactored product lives across storage tiers. This
// module reproduces that layer: a BpWriter compresses and places per-level
// blocks plus opaque blobs (mesh geometry, restoration mappings), and a
// BpReader answers variable inquiries and retrieves blocks by
// (variable, level, kind) with per-phase timing.
//
// Layout: every block is one object in the StorageHierarchy; the global
// metadata (the block index + attributes) is itself serialized as an object
// on the fastest tier that fits it, mirroring ADIOS' small metadata file.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "compress/codec.hpp"
#include "storage/hierarchy.hpp"
#include "util/byte_buffer.hpp"

namespace canopus::adios {

/// Role of a block within a refactored variable.
enum class BlockKind : std::uint8_t {
  kBase = 0,        // L^{N-1}, the low-accuracy base dataset
  kDelta = 1,       // delta^{l-(l+1)}
  kMesh = 2,        // serialized TriMesh for a level
  kMapping = 3,     // fine-vertex -> coarse-triangle mapping
  kData = 4,        // plain (non-refactored) variable payload
  kChunkIndex = 5,  // per-chunk vertex ranges + bounding boxes of a level
};

std::string to_string(BlockKind kind);

/// Index entry for one stored block.
struct BlockRecord {
  std::string var;            // variable name, e.g. "dpot"
  BlockKind kind = BlockKind::kData;
  std::uint32_t level = 0;    // accuracy level the block belongs to
  std::uint32_t chunk = 0;    // chunk index within (var, kind, level)
  std::uint32_t chunk_count = 1;  // total chunks of that block group
  std::string codec = "raw";  // codec used on the payload ("none" = opaque)
  double error_bound = 0.0;
  std::uint64_t value_count = 0;  // doubles before compression (0 if opaque)
  std::uint64_t raw_bytes = 0;    // payload size before compression
  std::uint64_t stored_bytes = 0; // payload size as stored
  std::uint32_t tier = 0;         // hierarchy tier index holding the object
  std::string object_key;         // hierarchy object name

  void serialize(util::ByteWriter& out) const;
  static BlockRecord deserialize(util::ByteReader& in);
};

/// Result of an inquiry, in the spirit of adios_inq_var.
struct VarInfo {
  std::string var;
  std::vector<BlockRecord> blocks;  // every stored block of this variable

  /// Levels for which a block of `kind` exists, ascending.
  std::vector<std::uint32_t> levels(BlockKind kind) const;
  /// Pointer into this VarInfo's blocks (lvalue-only: calling it on a
  /// temporary would dangle, so that overload is deleted).
  const BlockRecord* block(BlockKind kind, std::uint32_t level) const&;
  const BlockRecord* block(BlockKind kind, std::uint32_t level) const&& = delete;
};

/// Timing breakdown of a read: tier I/O (simulated) vs decompression (wall),
/// plus the hierarchy's robustness counters for this read.
struct ReadTiming {
  double io_sim_seconds = 0.0;
  double io_wall_seconds = 0.0;
  double decompress_seconds = 0.0;
  std::size_t bytes_read = 0;
  std::uint32_t retries = 0;      // failed tier reads that were retried
  std::uint32_t corruptions = 0;  // CRC failures among those
  bool from_replica = false;      // served by a cross-tier replica copy
};

/// Timing breakdown of a write: compression (wall) vs tier I/O (simulated).
struct WriteTiming {
  double compress_seconds = 0.0;
  double io_sim_seconds = 0.0;
  double io_wall_seconds = 0.0;
  std::size_t bytes_written = 0;
  std::uint32_t tier = 0;
};

/// Writes one BP container. Blocks may be written in any order; close()
/// publishes the metadata object (until then readers cannot open the file).
class BpWriter {
 public:
  /// `path` names the container; all object keys are prefixed with it.
  BpWriter(storage::StorageHierarchy& hierarchy, std::string path);
  ~BpWriter();

  BpWriter(const BpWriter&) = delete;
  BpWriter& operator=(const BpWriter&) = delete;

  /// Compresses `values` with `codec_name` and places the block on the
  /// fastest tier that fits (or `tier_hint` when given).
  WriteTiming write_doubles(const std::string& var, BlockKind kind,
                            std::uint32_t level, std::span<const double> values,
                            const std::string& codec_name, double error_bound,
                            std::optional<std::uint32_t> tier_hint = {});

  /// Chunked variant: stores `values` as chunk `chunk` of `chunk_count`
  /// independently decodable pieces of the (var, kind, level) block group,
  /// enabling focused sub-range retrieval (Section III-E).
  WriteTiming write_doubles_chunk(const std::string& var, BlockKind kind,
                                  std::uint32_t level, std::uint32_t chunk,
                                  std::uint32_t chunk_count,
                                  std::span<const double> values,
                                  const std::string& codec_name,
                                  double error_bound,
                                  std::optional<std::uint32_t> tier_hint = {});

  /// Stores opaque bytes (mesh geometry, mappings) without compression.
  WriteTiming write_opaque(const std::string& var, BlockKind kind,
                           std::uint32_t level, util::BytesView bytes,
                           std::optional<std::uint32_t> tier_hint = {});

  /// Stores an already-encoded double block (compression ran elsewhere, e.g.
  /// on a worker thread). `payload` must be the output of `codec_name`'s
  /// encode() over `value_count` doubles with `error_bound`.
  WriteTiming write_precompressed(const std::string& var, BlockKind kind,
                                  std::uint32_t level, util::BytesView payload,
                                  const std::string& codec_name,
                                  double error_bound, std::uint64_t value_count,
                                  std::optional<std::uint32_t> tier_hint = {});

  /// Chunked variant of write_precompressed: how the parallel refactorer
  /// commits delta chunks whose encoding ran on pool workers — the committer
  /// thread places them in deterministic chunk order.
  WriteTiming write_precompressed_chunk(
      const std::string& var, BlockKind kind, std::uint32_t level,
      std::uint32_t chunk, std::uint32_t chunk_count, util::BytesView payload,
      const std::string& codec_name, double error_bound,
      std::uint64_t value_count, std::optional<std::uint32_t> tier_hint = {});

  void set_attribute(const std::string& name, const std::string& value);

  /// Publishes metadata; further writes are rejected.
  void close();
  bool closed() const { return closed_; }

 private:
  WriteTiming store(BlockRecord record, util::BytesView payload,
                    std::optional<std::uint32_t> tier_hint);

  storage::StorageHierarchy& hierarchy_;
  std::string path_;
  std::vector<BlockRecord> records_;
  std::map<std::string, std::string> attributes_;
  bool closed_ = false;
};

/// Reads a BP container written by BpWriter.
class BpReader {
 public:
  BpReader(storage::StorageHierarchy& hierarchy, std::string path);

  /// All variable names in the container.
  std::vector<std::string> variables() const;

  /// adios_inq_var: every block of one variable. Throws if absent.
  VarInfo inq_var(const std::string& var) const;

  /// adios_read_var: retrieve + decompress one double block (chunk 0).
  std::vector<double> read_doubles(const std::string& var, BlockKind kind,
                                   std::uint32_t level,
                                   ReadTiming* timing = nullptr) const;

  /// Retrieve one chunk of a chunked block group.
  std::vector<double> read_doubles_chunk(const std::string& var, BlockKind kind,
                                         std::uint32_t level, std::uint32_t chunk,
                                         ReadTiming* timing = nullptr) const;

  /// One chunk's stored payload plus its index record and I/O timing, fetched
  /// without decoding. Decoding can then run on any thread via decode_chunk —
  /// this is the split the progressive reader uses to decompress fetched
  /// chunks in parallel and to read ahead from slow tiers while restoring.
  struct RawChunk {
    BlockRecord record;
    util::Bytes payload;
    ReadTiming io;
  };
  RawChunk fetch_chunk(const std::string& var, BlockKind kind,
                       std::uint32_t level, std::uint32_t chunk) const;

  /// Decodes a fetched payload with the record's codec; adds the decode wall
  /// time to *decompress_seconds when given. Pure function of its arguments,
  /// safe to call concurrently from pool workers.
  static std::vector<double> decode_chunk(const BlockRecord& record,
                                          util::BytesView payload,
                                          double* decompress_seconds = nullptr);

  /// Retrieve one opaque block.
  util::Bytes read_opaque(const std::string& var, BlockKind kind,
                          std::uint32_t level, ReadTiming* timing = nullptr) const;

  std::optional<std::string> attribute(const std::string& name) const;

 private:
  const BlockRecord& find_record(const std::string& var, BlockKind kind,
                                 std::uint32_t level, std::uint32_t chunk) const;

  storage::StorageHierarchy& hierarchy_;
  std::string path_;
  std::vector<BlockRecord> records_;
  std::map<std::string, std::string> attributes_;
};

/// Object key of the metadata blob for a container path.
std::string metadata_key(const std::string& path);

}  // namespace canopus::adios
