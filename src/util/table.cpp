#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/assert.hpp"

namespace canopus::util {

void Table::add_row(std::vector<std::string> cells) {
  CANOPUS_ASSERT(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::save_csv(const std::string& path) const {
  std::ofstream f(path);
  CANOPUS_CHECK(f.good(), "cannot open csv output: " + path);
  write_csv(f);
}

}  // namespace canopus::util
