#pragma once
// Console/CSV table printer used by every bench binary to emit the paper's
// rows and series in a uniform, diff-friendly format.

#include <iosfwd>
#include <string>
#include <vector>

namespace canopus::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 4);
  static std::string pct(double fraction, int precision = 1);

  /// Pretty-prints with aligned columns.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Comma-separated with header row.
  void write_csv(std::ostream& os) const;
  void save_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace canopus::util
