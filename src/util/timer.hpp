#pragma once
// Wall-clock timing plus a named-phase accumulator used by the benches to
// report the paper's per-phase breakdowns (decimation / delta+compress / I/O;
// I/O / decompression / restoration / blob detection).

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace canopus::util {

/// Monotonic stopwatch returning elapsed seconds.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates (wall + simulated) seconds into named phases, preserving
/// insertion order so tables print phases in pipeline order.
class PhaseTimer {
 public:
  /// Adds `seconds` to the named phase (creates it on first use).
  void add(const std::string& phase, double seconds);

  /// Runs fn and charges its wall time to `phase`; returns fn's wall time.
  template <typename F>
  double time(const std::string& phase, F&& fn) {
    WallTimer t;
    fn();
    const double s = t.seconds();
    add(phase, s);
    return s;
  }

  double get(const std::string& phase) const;
  double total() const;
  void clear();

  /// Phases in first-use order.
  const std::vector<std::string>& phases() const { return order_; }

 private:
  std::map<std::string, double> seconds_;
  std::vector<std::string> order_;
};

}  // namespace canopus::util
