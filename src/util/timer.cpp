#include "util/timer.hpp"

namespace canopus::util {

void PhaseTimer::add(const std::string& phase, double seconds) {
  auto [it, inserted] = seconds_.try_emplace(phase, 0.0);
  if (inserted) order_.push_back(phase);
  it->second += seconds;
}

double PhaseTimer::get(const std::string& phase) const {
  auto it = seconds_.find(phase);
  return it == seconds_.end() ? 0.0 : it->second;
}

double PhaseTimer::total() const {
  double t = 0.0;
  for (const auto& [_, s] : seconds_) t += s;
  return t;
}

void PhaseTimer::clear() {
  seconds_.clear();
  order_.clear();
}

}  // namespace canopus::util
