#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace canopus::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double rmse(std::span<const double> a, std::span<const double> b) {
  CANOPUS_ASSERT(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double nrmse(std::span<const double> a, std::span<const double> b) {
  if (a.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(a.begin(), a.end());
  const double range = *hi - *lo;
  const double e = rmse(a, b);
  return range > 0.0 ? e / range : e;
}

double psnr(std::span<const double> a, std::span<const double> b) {
  if (a.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(a.begin(), a.end());
  const double range = *hi - *lo;
  const double e = rmse(a, b);
  if (e == 0.0) return std::numeric_limits<double>::infinity();
  if (range == 0.0) return -std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(range / e);
}

double max_abs_error(std::span<const double> a, std::span<const double> b) {
  CANOPUS_ASSERT(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

double total_variation(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    acc += std::abs(xs[i] - xs[i - 1]);
  }
  return acc / static_cast<double>(xs.size() - 1);
}

double lag1_autocorrelation(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  RunningStats st;
  st.add(xs);
  const double mu = st.mean();
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double d = xs[i] - mu;
    den += d * d;
    if (i + 1 < xs.size()) num += d * (xs[i + 1] - mu);
  }
  return den > 0.0 ? num / den : 0.0;
}

Histogram histogram(std::span<const double> xs, std::size_t nbins) {
  CANOPUS_ASSERT(nbins > 0);
  Histogram h;
  h.bins.assign(nbins, 0);
  if (xs.empty()) return h;
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  h.lo = *lo;
  h.hi = *hi;
  const double width = h.hi - h.lo;
  for (double x : xs) {
    std::size_t bin = 0;
    if (width > 0.0) {
      bin = static_cast<std::size_t>((x - h.lo) / width * static_cast<double>(nbins));
      bin = std::min(bin, nbins - 1);
    }
    ++h.bins[bin];
  }
  return h;
}

}  // namespace canopus::util
