#pragma once
// Runtime SIMD dispatch for the hot kernels (delta estimate/residual, the
// zfp-like block transform, sz-like code reconstruction, CRC-32 slicing).
//
// Policy: a kernel gets a vector variant only when the lanes compute the
// exact same IEEE/integer operations in the same order as the scalar loop, so
// the output is bitwise-identical on every path (parallel_test and
// compress_test enforce this). Kernels whose scalar semantics have no exact
// lane equivalent (llround quantization, loop-carried prediction) stay
// scalar on purpose.
//
// Mechanics: the baseline build carries no -mavx2 — vector bodies are
// compiled per-function with __attribute__((target("avx2"))) and selected at
// runtime via __builtin_cpu_supports, so one binary runs (and can A/B
// scalar-vs-vector in-process) on any x86-64. On aarch64 the NEON baseline is
// always available; everything else falls back to the scalar loops. The
// whole mechanism sits behind a process-wide switch so tests and the
// micro_kernels bench can force the scalar path (CANOPUS_SIMD=0 or
// set_enabled(false)) and compare bit-for-bit in one process.

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CANOPUS_SIMD_X86 1
#else
#define CANOPUS_SIMD_X86 0
#endif
#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define CANOPUS_SIMD_NEON 1
#else
#define CANOPUS_SIMD_NEON 0
#endif

namespace canopus::util::simd {

/// Widest instruction set the vector kernels can use on this machine.
enum class Isa : unsigned char {
  kScalar = 0,  // no vector variant compiled in (or none supported)
  kSse2 = 1,    // x86-64 baseline (128-bit lanes)
  kAvx2 = 2,    // 256-bit integer + double lanes, gathers
  kNeon = 3,    // aarch64 baseline (128-bit lanes)
};

inline const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
    case Isa::kNeon: return "neon";
  }
  return "scalar";
}

namespace detail {
inline Isa detect() {
#if CANOPUS_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  return Isa::kSse2;
#elif CANOPUS_SIMD_NEON
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("CANOPUS_SIMD");
    return !(env != nullptr && std::strcmp(env, "0") == 0);
  }();
  return flag;
}
}  // namespace detail

/// The ISA the hardware offers, independent of the runtime switch.
inline Isa hardware_isa() {
  static const Isa isa = detail::detect();
  return isa;
}

/// Process-wide switch: kernels take their vector path only while this is
/// true (default: on, unless the environment sets CANOPUS_SIMD=0). Flipping
/// it never changes results — both paths are bitwise-identical — only which
/// code computes them, which is exactly what the determinism tests and the
/// scalar-vs-vector bench comparisons exercise.
inline bool enabled() { return detail::enabled_flag().load(std::memory_order_relaxed); }
inline void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// ISA the kernels will actually dispatch to right now.
inline Isa active_isa() { return enabled() ? hardware_isa() : Isa::kScalar; }

/// True when a dispatching kernel should take its AVX2 body.
inline bool use_avx2() { return active_isa() == Isa::kAvx2; }
/// True when a dispatching kernel should take its NEON body.
inline bool use_neon() { return active_isa() == Isa::kNeon; }

/// RAII force-scalar scope for tests: disables vector dispatch on
/// construction, restores the previous state on destruction.
class ScopedForceScalar {
 public:
  ScopedForceScalar() : was_(enabled()) { set_enabled(false); }
  ~ScopedForceScalar() { set_enabled(was_); }
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;

 private:
  bool was_;
};

}  // namespace canopus::util::simd
