#include "util/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace canopus::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) == 0) {
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        flags_[std::string(arg)] = "1";
      } else {
        flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

}  // namespace canopus::util
