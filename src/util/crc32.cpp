#include "util/crc32.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "util/simd.hpp"

namespace canopus::util {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

// Slice-by-8 (Intel's "slicing" CRC): eight derived tables let one iteration
// fold eight message bytes, turning the byte-serial table walk into eight
// independent lookups per step. Pure integer table algebra — the result is
// the same CRC bit-for-bit, so the fast path needs no separate verification
// framing.
struct SliceTables {
  std::uint32_t t[8][256];
};

constexpr SliceTables make_slice_tables() {
  SliceTables s{};
  for (std::uint32_t i = 0; i < 256; ++i) s.t[0][i] = kTable[i];
  for (int k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = s.t[k - 1][i];
      s.t[k][i] = (prev >> 8) ^ s.t[0][prev & 0xFFu];
    }
  }
  return s;
}

constexpr auto kSlice = make_slice_tables();

std::uint32_t update_bytewise(std::uint32_t c, const unsigned char* p,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c;
}

std::uint32_t update_slice8(std::uint32_t c, const unsigned char* p,
                            std::size_t n) {
  const auto& t = kSlice.t;
  while (n >= 8) {
    std::uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  return update_bytewise(c, p, n);
}

}  // namespace

Crc32& Crc32::update(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  // The eight-byte fold loads words little-endian; on a big-endian target the
  // byte-serial walk is the (already correct) fallback. The simd switch gates
  // the fast path so determinism tests and micro_kernels can time both in
  // one process.
  if constexpr (std::endian::native == std::endian::little) {
    if (n >= 16 && simd::enabled()) {
      state_ = update_slice8(state_, p, n);
      return *this;
    }
  }
  state_ = update_bytewise(state_, p, n);
  return *this;
}

}  // namespace canopus::util
