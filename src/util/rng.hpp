#pragma once
// Deterministic pseudo-random number generation.
//
// All randomness in canopus (synthetic datasets, property tests, tie-breaking)
// flows through util::Rng so that every run is reproducible from a seed. The
// engine is xoshiro256**, a small, fast, high-quality generator; we do not use
// std::mt19937 because its stream is not guaranteed identical across library
// implementations for the distributions layered on top.

#include <cstdint>
#include <limits>

namespace canopus::util {

/// xoshiro256** 1.0 engine with convenience distributions.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via SplitMix64 so that nearby
  /// seeds produce unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// UniformRandomBitGenerator interface so Rng works with <algorithm>.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace canopus::util
