#pragma once
// Growable byte buffer with primitive serialization helpers.
//
// ByteWriter appends little-endian primitives, length-prefixed strings and
// LEB128 varints to an owned std::vector<std::byte>. ByteReader consumes the
// same encodings from a non-owning span and throws canopus::Error on
// truncation, making it safe to feed untrusted/corrupt containers to the BP
// reader.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace canopus::util {

using Bytes = std::vector<std::byte>;
using BytesView = std::span<const std::byte>;

/// Appends primitives to an owned byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  /// Appends the raw object representation of a trivially copyable value.
  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &value, sizeof(T));
  }

  void put_bytes(BytesView bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  void put_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Unsigned LEB128 variable-length integer.
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
      v >>= 7;
    }
    buf_.push_back(static_cast<std::byte>(v));
  }

  /// Varint length prefix followed by the UTF-8 bytes.
  void put_string(std::string_view s) {
    put_varint(s.size());
    put_bytes(s.data(), s.size());
  }

  /// Varint count followed by packed elements.
  template <typename T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_varint(v.size());
    put_bytes(v.data(), v.size() * sizeof(T));
  }

  std::size_t size() const { return buf_.size(); }
  BytesView view() const { return buf_; }
  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

  /// Overwrites sizeof(T) bytes at an absolute offset (for patching headers).
  template <typename T>
  void patch(std::size_t offset, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    CANOPUS_ASSERT(offset + sizeof(T) <= buf_.size());
    std::memcpy(buf_.data() + offset, &value, sizeof(T));
  }

 private:
  Bytes buf_;
};

/// Consumes primitives from a non-owning byte view; throws Error on underrun.
class ByteReader {
 public:
  explicit ByteReader(BytesView view) : view_(view) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    CANOPUS_CHECK(pos_ + sizeof(T) <= view_.size(), "byte stream truncated");
    T value;
    std::memcpy(&value, view_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  BytesView get_bytes(std::size_t n) {
    CANOPUS_CHECK(pos_ + n <= view_.size(), "byte stream truncated");
    auto out = view_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      CANOPUS_CHECK(pos_ < view_.size(), "varint truncated");
      CANOPUS_CHECK(shift < 64, "varint overlong");
      const auto b = static_cast<std::uint8_t>(view_[pos_++]);
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  std::string get_string() {
    const auto n = get_varint();
    auto raw = get_bytes(n);
    return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get_varint();
    CANOPUS_CHECK(n <= (view_.size() - pos_) / sizeof(T), "vector length corrupt");
    std::vector<T> v(n);
    auto raw = get_bytes(n * sizeof(T));
    if (!raw.empty()) std::memcpy(v.data(), raw.data(), raw.size());
    return v;
  }

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return view_.size() - pos_; }
  bool exhausted() const { return pos_ == view_.size(); }
  void seek(std::size_t pos) {
    CANOPUS_CHECK(pos <= view_.size(), "seek past end");
    pos_ = pos;
  }

 private:
  BytesView view_;
  std::size_t pos_ = 0;
};

/// Reinterprets a typed vector as raw bytes (no copy).
template <typename T>
BytesView as_bytes_view(const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return BytesView(reinterpret_cast<const std::byte*>(v.data()), v.size() * sizeof(T));
}

/// Copies a raw byte view into a typed vector; size must divide evenly.
template <typename T>
std::vector<T> from_bytes(BytesView bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  CANOPUS_CHECK(bytes.size() % sizeof(T) == 0, "byte size not a multiple of element size");
  std::vector<T> v(bytes.size() / sizeof(T));
  // An empty view may carry a null data() pointer, which memcpy must not see.
  if (!bytes.empty()) std::memcpy(v.data(), bytes.data(), bytes.size());
  return v;
}

}  // namespace canopus::util
