#include "util/xml.hpp"

#include <cctype>

#include "util/assert.hpp"

namespace canopus::util {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  std::unique_ptr<XmlNode> parse_document() {
    skip_misc();
    auto root = parse_element();
    skip_misc();
    CANOPUS_CHECK(pos_ == s_.size(), "xml: trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("xml: " + why + " at offset " + std::to_string(pos_));
  }

  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return eof() ? '\0' : s_[pos_]; }
  bool starts_with(const char* prefix) const {
    return s_.compare(pos_, std::char_traits<char>::length(prefix), prefix) == 0;
  }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  /// Whitespace, comments, and an optional <?xml ...?> declaration.
  void skip_misc() {
    for (;;) {
      skip_ws();
      if (starts_with("<!--")) {
        const auto end = s_.find("-->", pos_ + 4);
        if (end == std::string::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (starts_with("<?")) {
        const auto end = s_.find("?>", pos_ + 2);
        if (end == std::string::npos) fail("unterminated declaration");
        pos_ = end + 2;
      } else {
        return;
      }
    }
  }

  static bool name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
           c == ':' || c == '.';
  }

  std::string parse_name() {
    const auto start = pos_;
    while (!eof() && name_char(s_[pos_])) ++pos_;
    if (pos_ == start) fail("expected a name");
    return s_.substr(start, pos_ - start);
  }

  std::string decode_entities(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      const auto semi = raw.find(';', i);
      if (semi == std::string::npos) fail("unterminated entity");
      const auto entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") out.push_back('<');
      else if (entity == "gt") out.push_back('>');
      else if (entity == "amp") out.push_back('&');
      else if (entity == "quot") out.push_back('"');
      else if (entity == "apos") out.push_back('\'');
      else fail("unknown entity &" + entity + ";");
      i = semi;
    }
    return out;
  }

  std::unique_ptr<XmlNode> parse_element() {
    if (peek() != '<') fail("expected '<'");
    ++pos_;
    auto node = std::make_unique<XmlNode>();
    node->name = parse_name();

    // Attributes.
    for (;;) {
      skip_ws();
      if (starts_with("/>")) {
        pos_ += 2;
        return node;
      }
      if (peek() == '>') {
        ++pos_;
        break;
      }
      const auto key = parse_name();
      skip_ws();
      if (peek() != '=') fail("expected '=' after attribute name");
      ++pos_;
      skip_ws();
      const char quote = peek();
      if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
      ++pos_;
      const auto end = s_.find(quote, pos_);
      if (end == std::string::npos) fail("unterminated attribute value");
      node->attributes[key] = decode_entities(s_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }

    // Content until the matching close tag.
    for (;;) {
      if (eof()) fail("unterminated element <" + node->name + ">");
      if (starts_with("<!--")) {
        const auto end = s_.find("-->", pos_ + 4);
        if (end == std::string::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (starts_with("</")) {
        pos_ += 2;
        const auto close = parse_name();
        if (close != node->name) {
          fail("mismatched close tag </" + close + "> for <" + node->name + ">");
        }
        skip_ws();
        if (peek() != '>') fail("malformed close tag");
        ++pos_;
        return node;
      } else if (peek() == '<') {
        node->children.push_back(parse_element());
      } else {
        const auto next = s_.find('<', pos_);
        if (next == std::string::npos) fail("unterminated element content");
        node->text += decode_entities(s_.substr(pos_, next - pos_));
        pos_ = next;
      }
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

const XmlNode* XmlNode::child(const std::string& element_name) const {
  for (const auto& c : children) {
    if (c->name == element_name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(
    const std::string& element_name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c->name == element_name) out.push_back(c.get());
  }
  return out;
}

std::string XmlNode::attr(const std::string& attribute,
                          const std::string& fallback) const {
  auto it = attributes.find(attribute);
  return it == attributes.end() ? fallback : it->second;
}

bool XmlNode::has_attr(const std::string& attribute) const {
  return attributes.count(attribute) > 0;
}

std::unique_ptr<XmlNode> parse_xml(const std::string& text) {
  Parser p(text);
  return p.parse_document();
}

}  // namespace canopus::util
