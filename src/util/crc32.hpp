#pragma once
// CRC-32 checksum (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the storage layer to frame every stored blob so that corrupt bytes
// coming back from a failing tier are detected instead of silently decoded.
// Long inputs take a slice-by-8 table fold (eight bytes per step, gated on
// util::simd::enabled() so the scalar byte walk stays comparable in-process);
// both paths produce identical checksums. Incremental update() calls let
// callers checksum streamed data without concatenation.

#include <cstddef>
#include <cstdint>

#include "util/byte_buffer.hpp"

namespace canopus::util {

class Crc32 {
 public:
  Crc32& update(const void* data, std::size_t n);
  Crc32& update(BytesView bytes) { return update(bytes.data(), bytes.size()); }

  /// Finalized checksum of everything fed so far (state is not consumed;
  /// further update() calls continue the stream).
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  void reset() { state_ = 0xFFFFFFFFu; }

  /// One-shot convenience.
  static std::uint32_t compute(BytesView bytes) {
    return Crc32().update(bytes).value();
  }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace canopus::util
