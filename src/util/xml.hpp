#pragma once
// Minimal XML subset parser for runtime configuration files.
//
// ADIOS configures I/O transports through an external XML file (the paper,
// Section III-D); Canopus keeps that workflow. Supported subset: nested
// elements, double- or single-quoted attributes, self-closing tags,
// comments, and text content (kept verbatim, entities &lt; &gt; &amp;
// &quot; &apos; decoded). No DTDs, namespaces, or processing instructions —
// configuration files do not need them.

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace canopus::util {

struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<XmlNode>> children;
  std::string text;  // concatenated character data

  /// First child with the given element name, or nullptr.
  const XmlNode* child(const std::string& element_name) const;
  /// All children with the given element name.
  std::vector<const XmlNode*> children_named(const std::string& element_name) const;
  /// Attribute value or fallback.
  std::string attr(const std::string& attribute, const std::string& fallback = "") const;
  bool has_attr(const std::string& attribute) const;
};

/// Parses a document and returns its root element; throws canopus::Error on
/// malformed input.
std::unique_ptr<XmlNode> parse_xml(const std::string& text);

}  // namespace canopus::util
