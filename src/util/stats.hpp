#pragma once
// Descriptive statistics and signal-smoothness measures.
//
// The smoothness measures back the paper's central observation that deltas
// between adjacent decimation levels are smoother (less variable) than the
// level data itself, which is why compressing deltas wins (Fig. 4/5).

#include <cstddef>
#include <span>
#include <vector>

namespace canopus::util {

/// Single-pass running mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x);
  void add(std::span<const double> xs) {
    for (double x : xs) add(x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Root-mean-square error between two equal-length signals.
double rmse(std::span<const double> a, std::span<const double> b);

/// RMSE normalized by the value range of `a` (0 if `a` is constant & equal).
double nrmse(std::span<const double> a, std::span<const double> b);

/// Peak signal-to-noise ratio in dB with `a` as the reference.
double psnr(std::span<const double> a, std::span<const double> b);

/// Largest absolute pointwise difference.
double max_abs_error(std::span<const double> a, std::span<const double> b);

/// Mean absolute successive difference — the primary smoothness proxy.
/// Smaller means smoother; deltas should score lower than raw levels.
double total_variation(std::span<const double> xs);

/// Lag-1 autocorrelation coefficient in [-1, 1]; near 1 means smooth.
double lag1_autocorrelation(std::span<const double> xs);

/// Fixed-width histogram over [min, max] of the data.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> bins;
};
Histogram histogram(std::span<const double> xs, std::size_t nbins);

}  // namespace canopus::util
