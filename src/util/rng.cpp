#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace canopus::util {

namespace {
inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
  // A xoshiro state of all zeros is a fixed point; splitmix64 cannot produce
  // four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  CANOPUS_ASSERT(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace canopus::util
