#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "obs/metrics.hpp"

namespace canopus::util {

namespace {
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  QueuedTask task{std::move(fn), 0};
  if (obs::enabled()) {
    task.enqueue_ns = steady_now_ns();
  }
  std::size_t depth = 0;
  {
    std::lock_guard lock(mu_);
    queue_.push(std::move(task));
    depth = queue_.size();
  }
  if (obs::enabled()) {
    // Registry handles are created once and stay valid for the process
    // lifetime (the registry is leaked), so caching them here is safe.
    static auto& tasks = obs::MetricsRegistry::global().counter("pool.tasks");
    static auto& queue_depth =
        obs::MetricsRegistry::global().gauge("pool.queue_depth");
    tasks.add(1);
    queue_depth.set(static_cast<std::int64_t>(depth));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    if (task.enqueue_ns != 0 && obs::enabled()) {
      static auto& wait =
          obs::MetricsRegistry::global().histogram("pool.task_wait_us");
      wait.observe(static_cast<double>(steady_now_ns() - task.enqueue_ns) /
                   1e3);
    }
    task.fn();
  }
}

bool ThreadPool::on_worker_thread() const {
  const auto self = std::this_thread::get_id();
  for (const auto& w : workers_) {
    if (w.get_id() == self) return true;
  }
  return false;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t, std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  // Re-entrancy guard: a worker of this pool blocking on its own pool's
  // futures would deadlock, so nested calls degrade to inline execution.
  if (on_worker_thread()) {
    fn(begin, end);
    return;
  }
  const std::size_t n = end - begin;
  std::size_t chunks = std::min(n, std::max<std::size_t>(1, size() * 2));
  if (grain > 0) {
    // Respect the minimum useful work per task: never split finer than
    // `grain` iterations (small loops degrade gracefully to one task).
    chunks = std::min(chunks, std::max<std::size_t>(1, n / grain));
  }
  const std::size_t chunk = (n + chunks - 1) / chunks;
  if (chunks == 1) {
    fn(begin, end);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = begin; c < end; c += chunk) {
    const std::size_t hi = std::min(end, c + chunk);
    futs.push_back(submit([&fn, c, hi] { fn(c, hi); }));
  }
  std::exception_ptr first;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace canopus::util
