#pragma once
// Minimal --flag=value parser for the bench and example executables.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace canopus::util {

class Cli {
 public:
  /// Parses `--name=value` and bare `--name` (=> "1") arguments; anything not
  /// starting with `--` is kept as a positional argument.
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const { return flags_.count(name) > 0; }
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace canopus::util
