#pragma once
// Bit-granular I/O used by the entropy coders and the ZFP-like bit-plane codec.
//
// Bits are packed LSB-first within each 64-bit word; the writer flushes whole
// words into a byte vector. The reader mirrors the layout and throws on
// overrun.

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/byte_buffer.hpp"

namespace canopus::util {

class BitWriter {
 public:
  /// Appends the low `nbits` bits of `value` (0 <= nbits <= 64).
  void write_bits(std::uint64_t value, unsigned nbits) {
    CANOPUS_ASSERT(nbits <= 64);
    if (nbits == 0) return;
    if (nbits < 64) value &= (1ull << nbits) - 1;
    acc_ |= value << fill_;
    if (fill_ + nbits >= 64) {
      words_.push_back(acc_);
      const unsigned consumed = 64 - fill_;
      acc_ = (consumed < 64) ? value >> consumed : 0;
      fill_ = fill_ + nbits - 64;
    } else {
      fill_ += nbits;
    }
  }

  void write_bit(bool b) { write_bits(b ? 1u : 0u, 1); }

  /// Elias-gamma-style unary+binary code for small non-negative integers.
  void write_unary(std::uint32_t n) {
    while (n >= 32) {
      write_bits(0, 32);
      n -= 32;
    }
    write_bits(1ull << n, n + 1);
  }

  std::size_t bit_count() const { return words_.size() * 64 + fill_; }

  /// Finalizes and returns the packed bytes (pads the tail word with zeros).
  Bytes finish() {
    if (fill_ > 0) {
      words_.push_back(acc_);
      acc_ = 0;
      fill_ = 0;
    }
    Bytes out(words_.size() * sizeof(std::uint64_t));
    // An empty stream has no backing word storage; memcpy rejects null.
    if (!out.empty()) std::memcpy(out.data(), words_.data(), out.size());
    words_.clear();
    return out;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;  // bits currently in acc_
};

class BitReader {
 public:
  explicit BitReader(BytesView bytes) : bytes_(bytes) {}

  std::uint64_t read_bits(unsigned nbits) {
    CANOPUS_ASSERT(nbits <= 64);
    if (nbits == 0) return 0;
    std::uint64_t out = 0;
    unsigned got = 0;
    while (got < nbits) {
      if (fill_ == 0) refill();
      const unsigned take = std::min(nbits - got, fill_);
      const std::uint64_t mask = (take < 64) ? ((1ull << take) - 1) : ~0ull;
      out |= (acc_ & mask) << got;
      acc_ >>= take;
      fill_ -= take;
      got += take;
    }
    return out;
  }

  bool read_bit() { return read_bits(1) != 0; }

  std::uint32_t read_unary() {
    std::uint32_t n = 0;
    while (!read_bit()) {
      ++n;
      CANOPUS_CHECK(n < (1u << 24), "unary code runaway");
    }
    return n;
  }

  /// Number of whole bits consumed so far.
  std::size_t bits_consumed() const { return word_index_ * 64 - fill_; }

 private:
  void refill() {
    const std::size_t byte_off = word_index_ * sizeof(std::uint64_t);
    CANOPUS_CHECK(byte_off < bytes_.size(), "bit stream exhausted");
    const std::size_t avail = std::min(sizeof(std::uint64_t), bytes_.size() - byte_off);
    acc_ = 0;
    std::memcpy(&acc_, bytes_.data() + byte_off, avail);
    fill_ = 64;  // trailing pad bits read as zero, callers track logical length
    ++word_index_;
  }

  BytesView bytes_;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;
  std::size_t word_index_ = 0;
};

}  // namespace canopus::util
