#pragma once
// Contract-checking macros in the spirit of the Core Guidelines' Expects/Ensures.
//
// CANOPUS_ASSERT(cond)        - programming-error contract; aborts in all builds.
// CANOPUS_CHECK(cond, msg)    - recoverable runtime condition; throws canopus::Error.
// CANOPUS_UNREACHABLE(msg)    - marks impossible control flow.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace canopus {

/// Exception type thrown for recoverable runtime failures (bad input, I/O
/// errors, corrupt streams). Programming errors use CANOPUS_ASSERT instead.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "canopus: assertion `%s` failed at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace detail

}  // namespace canopus

#define CANOPUS_ASSERT(cond)                                            \
  do {                                                                  \
    if (!(cond)) ::canopus::detail::assert_fail(#cond, __FILE__, __LINE__); \
  } while (0)

#define CANOPUS_CHECK(cond, msg)                      \
  do {                                                \
    if (!(cond)) throw ::canopus::Error(msg);         \
  } while (0)

#define CANOPUS_UNREACHABLE(msg) ::canopus::detail::assert_fail(msg, __FILE__, __LINE__)
