#pragma once
// Task engine: fixed-size worker pool with typed futures, a grain-size-aware
// parallel_for, and a deterministic ordered-reduce pipeline helper.
//
// Canopus' refactoring is embarrassingly parallel across mesh partitions
// (planes, chunks, delta levels); this pool is the single place where that
// parallelism is expressed, so benches can pin the worker count to model
// different compute allocations. Two invariants the helpers guarantee:
//
//  * Exceptions thrown by tasks propagate into the caller (submit via the
//    returned future; parallel_for/ordered_reduce rethrow the first one).
//  * ordered_reduce feeds results to the reducer in strictly ascending index
//    order on the calling thread, so a multithreaded map-reduce produces
//    output bitwise-identical to the serial loop `for (i) reduce(i, map(i))`
//    no matter how many workers run the maps.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace canopus::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task and returns a typed future for its result; an exception
  /// thrown by the task surfaces at future.get().
  template <typename F>
  std::future<std::invoke_result_t<std::decay_t<F>>> submit(F&& fn) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Splits [begin, end) into chunks of at least `grain` iterations
  /// (grain == 0 picks ~2x oversubscription) and runs fn(chunk_begin,
  /// chunk_end) on the pool, blocking until all complete. Exceptions from
  /// workers propagate to the caller (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 0);

  /// Deterministic ordered map-reduce: computes map(i) for i in [0, n) on
  /// the pool while feeding completed results to reduce(i, std::move(result))
  /// on the calling thread in strictly ascending index order — the reduce
  /// sequence is identical to the serial loop regardless of worker count. At
  /// most `window` maps are in flight (0 = 2x pool size), bounding memory for
  /// pipeline stages whose products are large (encoded delta chunks). An
  /// exception from map(i) surfaces in the caller at position i, after every
  /// in-flight map has drained (so no task outlives the callables).
  template <typename Map, typename Reduce>
  void ordered_reduce(std::size_t n, Map&& map, Reduce&& reduce,
                      std::size_t window = 0) {
    using R = std::invoke_result_t<Map&, std::size_t>;
    if (n == 0) return;
    // Re-entrancy guard: a worker blocking on its own pool's futures would
    // deadlock, so nested calls degrade to inline execution (same order).
    if (on_worker_thread()) {
      for (std::size_t i = 0; i < n; ++i) reduce(i, map(i));
      return;
    }
    if (window == 0) window = 2 * size();
    if (window == 0) window = 1;
    std::deque<std::future<R>> inflight;
    std::size_t next_submit = 0;
    try {
      for (std::size_t i = 0; i < n; ++i) {
        while (next_submit < n && inflight.size() < window) {
          inflight.push_back(
              submit([&map, idx = next_submit]() -> R { return map(idx); }));
          ++next_submit;
        }
        R result = inflight.front().get();
        inflight.pop_front();
        reduce(i, std::move(result));
      }
    } catch (...) {
      // Drain before rethrowing: queued tasks reference the caller's map.
      for (auto& f : inflight) {
        if (f.valid()) f.wait();
      }
      throw;
    }
  }

  /// Global pool shared by library internals; sized to hardware concurrency.
  static ThreadPool& global();

 private:
  /// One queued task; `enqueue_ns` is stamped only while observability is
  /// enabled (0 otherwise) so the disabled path never reads the clock.
  struct QueuedTask {
    std::function<void()> fn;
    std::int64_t enqueue_ns = 0;
  };

  /// Type-erased enqueue: pushes, updates the pool metrics (task count,
  /// queue depth) when enabled, and wakes a worker.
  void enqueue(std::function<void()> fn);
  void worker_loop();
  bool on_worker_thread() const;

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace canopus::util
