#pragma once
// Fixed-size worker pool with a blocking task queue and a parallel_for helper.
//
// Canopus' refactoring is embarrassingly parallel across mesh partitions
// (planes, chunks); this pool is the single place where that parallelism is
// expressed, so benches can pin the worker count to model different
// compute allocations.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace canopus::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task and returns a future for its completion.
  template <typename F>
  std::future<void> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Splits [begin, end) into ~2x-oversubscribed chunks and runs
  /// fn(chunk_begin, chunk_end) on the pool, blocking until all complete.
  /// Exceptions from workers propagate to the caller (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Global pool shared by library internals; sized to hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace canopus::util
