#pragma once
// Knobs of the deadline-aware QueryScheduler (src/serve), settable from the
// XML runtime configuration:
//
//   <serve workers="4" queue-limit="64" deadline-default="250ms"
//          age-boost="4"/>
//
// This header is dependency-free on purpose: core/config.hpp and
// core/pipeline.hpp hold a ServeConfig by value while the scheduler itself
// lives in the serve module (which links against core, not the other way
// round). See serve/query_scheduler.hpp for the admission-control contract.

#include <cstddef>

namespace canopus::serve {

struct ServeConfig {
  /// Concurrent query executors. Each worker runs one query at a time on the
  /// pipeline's shared session pool; the worker count is the service
  /// capacity, everything beyond it waits in the admission queue.
  std::size_t workers = 2;

  /// Bounded admission queue: a submission arriving while this many queries
  /// are already waiting is shed immediately with StatusCode::kOverloaded.
  /// Backpressure instead of unbounded queuing — a shed client knows at once
  /// and can back off, retry coarser, or go elsewhere.
  std::size_t queue_limit = 32;

  /// Retrieval-cost budget applied when a QueryRequest names no deadline of
  /// its own, in seconds on the retrieval clock (simulated tier I/O plus
  /// measured decompress/restore wall time — RetrievalTimings::total()).
  double default_deadline_seconds = 0.25;

  /// Priority points a waiting query gains per second of queue time.
  /// Aging guarantees low-priority queries are not starved under a steady
  /// high-priority stream; 0 disables it (strict priority, FIFO within a
  /// priority).
  double age_boost = 4.0;
};

}  // namespace canopus::serve
