#include "serve/query_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <utility>

#include "adios/bp.hpp"
#include "fabric/fabric.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/blob_frame.hpp"
#include "storage/tier.hpp"
#include "tiering/tier_advisor.hpp"
#include "util/assert.hpp"

namespace canopus::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Shared facade mapper (core/status.hpp): a query executes the open path,
/// so a generic canopus::Error means a missing container or variable
/// (kNotFound), not an internal invariant failure.
Status status_from_query_exception() {
  return status_from_current_exception(StatusCode::kNotFound);
}

void count_serve(const char* what) {
  if (obs::enabled()) {
    obs::MetricsRegistry::global().counter(std::string("serve.") + what).add(1);
  }
}

void gauge_queue_depth(std::size_t depth) {
  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .gauge("serve.queue_depth")
        .set(static_cast<std::int64_t>(depth));
  }
}

}  // namespace

QueryScheduler::QueryScheduler(storage::StorageHierarchy& hierarchy,
                               ServeConfig config, core::ParallelConfig parallel,
                               util::ThreadPool* session_pool)
    : hierarchy_(hierarchy),
      config_(config),
      parallel_(parallel),
      session_pool_(session_pool) {
  CANOPUS_CHECK(config_.workers >= 1, "scheduler needs at least one worker");
  CANOPUS_CHECK(config_.queue_limit >= 1, "queue limit must be >= 1");
  CANOPUS_CHECK(std::isfinite(config_.default_deadline_seconds) &&
                    config_.default_deadline_seconds > 0.0,
                "default deadline must be finite and > 0");
  CANOPUS_CHECK(std::isfinite(config_.age_boost) && config_.age_boost >= 0.0,
                "age boost must be finite and >= 0");
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

QueryScheduler::~QueryScheduler() {
  std::deque<Pending> leftover;
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
    leftover.swap(queue_);
    stats_.shed += leftover.size();
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  gauge_queue_depth(0);
  for (auto& pending : leftover) {
    count_serve("shed");
    QueryOutcome out;
    out.status = Status::failure(StatusCode::kOverloaded,
                                 "scheduler shut down before dispatch");
    pending.promise.set_value(std::move(out));
  }
}

std::optional<Status> QueryScheduler::validate(const QueryRequest& request) {
  if (request.path.empty() || request.var.empty()) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "query: path and var are required");
  }
  if (request.rmse_threshold.has_value() &&
      !std::isfinite(*request.rmse_threshold)) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "query: rmse_threshold must be finite");
  }
  if (request.deadline_seconds.has_value() &&
      !(std::isfinite(*request.deadline_seconds) &&
        *request.deadline_seconds > 0.0)) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "query: deadline_seconds must be finite and > 0");
  }
  return std::nullopt;
}

std::future<QueryOutcome> QueryScheduler::submit(QueryRequest request) {
  std::promise<QueryOutcome> promise;
  std::future<QueryOutcome> future = promise.get_future();
  if (const auto invalid = validate(request)) {
    QueryOutcome out;
    out.status = *invalid;
    promise.set_value(std::move(out));
    return future;
  }
  bool shed = false;
  {
    std::scoped_lock lock(mu_);
    ++stats_.submitted;
    if (stop_ || queue_.size() >= config_.queue_limit) {
      ++stats_.shed;
      shed = true;
    } else {
      ++stats_.admitted;
      queue_.push_back(Pending{std::move(request), std::move(promise),
                               std::chrono::steady_clock::now()});
      stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
      gauge_queue_depth(queue_.size());
    }
  }
  if (shed) {
    count_serve("shed");
    QueryOutcome out;
    out.status = Status::failure(
        StatusCode::kOverloaded,
        "admission queue full (" + std::to_string(config_.queue_limit) +
            " waiting); back off and retry");
    promise.set_value(std::move(out));
  } else {
    count_serve("admitted");
    cv_.notify_one();
  }
  return future;
}

Status QueryScheduler::execute(const QueryRequest& request, QueryResult* result) {
  QueryOutcome outcome = submit(request).get();
  if (result != nullptr && outcome.status.usable()) {
    *result = std::move(outcome.result);
  }
  return outcome.status;
}

void QueryScheduler::pause() {
  std::scoped_lock lock(mu_);
  paused_ = true;
}

void QueryScheduler::resume() {
  {
    std::scoped_lock lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

QueryScheduler::Stats QueryScheduler::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

std::size_t QueryScheduler::queue_depth() const {
  std::scoped_lock lock(mu_);
  return queue_.size();
}

void QueryScheduler::worker_loop() {
  for (;;) {
    Pending job;
    double queue_seconds = 0.0;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] { return stop_ || (!paused_ && !queue_.empty()); });
      if (stop_) return;  // the destructor sheds whatever is still queued
      // Priority-aged pop: highest effective priority wins; the strict `>`
      // keeps FIFO order among equals (earlier arrivals sit at lower
      // indices). O(queue_limit) — the queue is bounded and small.
      const auto now = std::chrono::steady_clock::now();
      std::size_t best = 0;
      double best_priority = -std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        const double p = effective_priority(
            queue_[i].request.priority,
            seconds_between(queue_[i].enqueued, now), config_.age_boost);
        if (p > best_priority) {
          best_priority = p;
          best = i;
        }
      }
      job = std::move(queue_[best]);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
      gauge_queue_depth(queue_.size());
      queue_seconds = seconds_between(job.enqueued, now);
    }

    QueryOutcome out = run_query(std::move(job.request), queue_seconds);
    {
      std::scoped_lock lock(mu_);
      if (out.status.usable()) {
        ++stats_.completed;
        if (out.status.degraded) ++stats_.degraded;
      } else {
        ++stats_.failed;
      }
    }
    if (out.status.usable()) {
      count_serve(out.status.degraded ? "degraded" : "completed");
    } else {
      count_serve("failed");
    }
    job.promise.set_value(std::move(out));
  }
}

QueryOutcome QueryScheduler::run_query(QueryRequest request,
                                       double queue_seconds) {
  QueryOutcome out;
  out.result.queue_seconds = queue_seconds;
  out.result.dispatch_order =
      dispatch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .histogram("serve.queue_wait_us")
        .observe(queue_seconds * 1e6);
  }
  // Fabric dispatch: route to the shard with the most bytes of this
  // variable; the node's hierarchy resolves the rest of the chunks remotely.
  storage::StorageHierarchy* hierarchy = &hierarchy_;
  int shard = -1;
  if (auto* fabric = fabric_.load(std::memory_order_acquire)) {
    shard = static_cast<int>(fabric->route_query(request.path, request.var));
    hierarchy = &fabric->node(static_cast<std::size_t>(shard));
    count_serve("fabric_dispatches");
  }
  out.result.shard = shard;
  CANOPUS_SPAN("serve.query", {{"var", request.var},
                               {"priority", request.priority},
                               {"shard", shard}});
  try {
    core::ReaderOptions reader_options;
    reader_options.parallel = parallel_;
    if (session_pool_ != nullptr) reader_options.shared_pool = session_pool_;
    core::ProgressiveReader reader(*hierarchy, request.path, request.var,
                                   request.geometry, reader_options);

    const double deadline =
        request.deadline_seconds.value_or(config_.default_deadline_seconds);
    const auto coarsest = static_cast<std::uint32_t>(reader.level_count() - 1);
    const std::uint32_t target = std::min(request.target_level, coarsest);
    // Adaptive tiering: record this query's access intent — the base plus
    // every delta level the refinement will touch — into the advisor's heat
    // before any byte moves, so placement follows the workload rather than
    // trailing it. (register_container is an idempotent no-op after the
    // first query against the path.)
    tiering::TierAdvisor* advisor = advisor_.load(std::memory_order_acquire);
    if (advisor != nullptr) {
      advisor->register_container(request.path);
      for (const auto& b : reader.var_info().blocks) {
        const bool touched =
            b.kind == adios::BlockKind::kBase ||
            b.kind == adios::BlockKind::kData ||
            (b.kind == adios::BlockKind::kDelta && b.level >= target);
        if (touched) advisor->heat().record(b.object_key, 1.0);
      }
    }
    // The cost model prices remote blocks through the directory's current
    // ownership (RemoteStore::estimated_read_cost). A topology change bumps
    // the epoch the node's RemoteStore surfaces; re-reading it before every
    // step lets a long query re-plan against migrated ownership instead of
    // budgeting with a retired layout.
    const auto topology_epoch = [hierarchy]() -> std::uint64_t {
      const auto* remote = hierarchy->remote_store();
      return remote != nullptr ? remote->topology_epoch() : 0;
    };
    std::uint64_t model_epoch = topology_epoch();
    CostModel model =
        CostModel::build(*hierarchy, reader, &calibration_, advisor);
    const core::RetrievalTimings at_open = reader.cumulative();
    // The base retrieval already spent part of the budget; plan the reachable
    // level with what is left. Even a budget the base alone exceeded serves
    // the base — the elastic floor is "always answer something".
    const std::uint32_t planned = model.reachable_level(
        reader.current_level(), deadline - at_open.total(), target);

    const bool rmse_mode = request.rmse_threshold.has_value();
    const double rmse_threshold = request.rmse_threshold.value_or(0.0);
    reader.refine_while([&](std::uint32_t next, double /*estimated_io*/) {
      if (!rmse_mode && next < target) return false;
      if (rmse_mode && reader.last_delta_rms().has_value() &&
          *reader.last_delta_rms() < rmse_threshold) {
        return false;  // accuracy criterion met
      }
      // Re-check the budget before every step with the calibrated estimate:
      // a plan that turned out optimistic stops early instead of blowing
      // the deadline. When the topology moved underneath the query
      // (attach/detach/rebalance committed a new epoch), rebuild the model
      // first so remaining steps are priced at the blocks' new homes.
      if (const std::uint64_t now_epoch = topology_epoch();
          now_epoch != model_epoch) {
        model = CostModel::build(*hierarchy, reader, &calibration_, advisor);
        model_epoch = now_epoch;
        count_serve("replans");
      }
      const double step_cost = next < model.steps().size()
                                   ? model.step(next).total()
                                   : 0.0;
      return reader.cumulative().total() + step_cost <= deadline;
    });

    const core::RetrievalTimings done = reader.cumulative();
    calibration_.observe_compute(
        done.bytes_read - at_open.bytes_read,
        (done.decompress_seconds + done.restore_seconds) -
            (at_open.decompress_seconds + at_open.restore_seconds));

    out.result.values = reader.values();
    out.result.mesh = reader.current_mesh();
    out.result.achieved_level = reader.current_level();
    out.result.planned_level = planned;
    out.result.target_level = target;
    out.result.delta_rms = reader.last_delta_rms().value_or(0.0);
    out.result.deadline_seconds = deadline;
    out.result.timings = done;
    out.result.topology_epoch = model_epoch;

    const bool faulted = reader.last_status() == core::RefineStatus::kDegraded;
    const bool accuracy_met =
        rmse_mode ? reader.at_full_accuracy() ||
                        (reader.last_delta_rms().has_value() &&
                         *reader.last_delta_rms() < rmse_threshold)
                  : reader.current_level() <= target;
    if (faulted || !accuracy_met) {
      out.status.code = StatusCode::kDegraded;
      out.status.degraded = true;
      out.status.detail =
          "served level " + std::to_string(out.result.achieved_level) +
          " (target " + std::to_string(target) + ", planned " +
          std::to_string(planned) + ") at delta RMS " +
          std::to_string(out.result.delta_rms) + " within a " +
          std::to_string(deadline) + "s budget" +
          (faulted ? "; a step degraded on tier faults" : "");
    } else if (done.retries > 0 || done.replica_reads > 0) {
      out.status.code = StatusCode::kRetried;
    }
  } catch (...) {
    out.status = status_from_query_exception();
  }
  return out;
}

}  // namespace canopus::serve
