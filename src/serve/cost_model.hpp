#pragma once
// Per-level retrieval cost model for the query scheduler.
//
// Planning a query means answering "how deep can this reader refine within
// its deadline?" before any delta is fetched. The model estimates the cost
// of each refinement step from three sources:
//
//   1. Product metadata — the container's block records give every delta
//      chunk's stored size and tier placement, and (when the reader has no
//      GeometryCache) the mesh/mapping blocks a step must also read.
//   2. The hierarchy's deterministic tier envelope — latency + bytes /
//      bandwidth per block — with cache-resident blocks counted as free
//      (BlockCache::probe: blob residency waives the I/O, a resident decoded
//      array waives the decode too).
//   3. Observed behavior — two calibration signals correct the analytic
//      numbers. Per tier, the obs read-latency histogram
//      ("storage.<tier>.read_us") is compared against the envelope's
//      prediction: a tier running hot (injected latency spikes, contention)
//      yields a factor > 1. Per scheduler, an EWMA of measured
//      decode+restore seconds per stored byte replaces the built-in prior
//      as queries complete.
//
// The model is a pure planning artifact: building it performs no tier reads
// and leaves the cache untouched. Execution then re-checks the remaining
// budget before every step (ProgressiveReader::refine_while), so a plan that
// turns out optimistic degrades gracefully instead of blowing the deadline.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/progressive_reader.hpp"
#include "storage/hierarchy.hpp"

// The tier advisor (src/tiering) supplies predicted residency; forward
// declaration only, so serve TUs that never pass one don't pull tiering in.
namespace canopus::tiering {
class TierAdvisor;
}  // namespace canopus::tiering

namespace canopus::serve {

/// Estimated cost of one refinement step (refining TO `level`).
struct LevelCostEstimate {
  std::uint32_t level = 0;
  double io_seconds = 0.0;       // simulated tier fetches of the step's blocks
  double compute_seconds = 0.0;  // decode + restore estimate (wall)
  std::size_t bytes = 0;         // stored bytes the step covers
  std::size_t cached_blocks = 0; // blocks currently resident in the cache
  double total() const { return io_seconds + compute_seconds; }
};

/// Observed-throughput calibration shared by every query of one scheduler.
/// Thread-safe: workers feed it after each executed query.
class Calibration {
 public:
  /// Decode+restore throughput prior until real queries are observed
  /// (~250 MB/s of stored bytes — deliberately conservative).
  static constexpr double kPriorSecondsPerByte = 4e-9;

  /// Folds one query's measured compute time over `bytes` stored bytes into
  /// the EWMA.
  void observe_compute(std::size_t bytes, double seconds);

  /// Current estimate of decode+restore seconds per stored byte.
  double compute_seconds_per_byte() const {
    return ewma_.load(std::memory_order_relaxed);
  }

  /// Multiplier on `tier`'s analytic read cost, learned from the obs
  /// read-latency histogram ("storage.<name>.read_us"): observed mean /
  /// predicted mean, clamped to [0.25, 4]. Returns 1 until observability is
  /// enabled and enough samples exist.
  static double tier_factor(const storage::StorageTier& tier);

 private:
  std::atomic<double> ewma_{kPriorSecondsPerByte};
};

class CostModel {
 public:
  /// Builds per-level step estimates for the variable `reader` has open.
  /// `calibration` may be null (priors and factor 1 apply). When `advisor`
  /// is set, locally resident blocks are priced at the advisor's *predicted*
  /// tier (TierAdvisor::predicted_tier) instead of their current one, so a
  /// plan raced by a background promotion/demotion charges the placement the
  /// query will actually read from.
  static CostModel build(storage::StorageHierarchy& hierarchy,
                         const core::ProgressiveReader& reader,
                         const Calibration* calibration = nullptr,
                         const tiering::TierAdvisor* advisor = nullptr);

  /// One entry per refinable level, index = target level (0 .. levels-2).
  const std::vector<LevelCostEstimate>& steps() const { return steps_; }

  /// Step estimate for refining TO `level` (level < levels-1).
  const LevelCostEstimate& step(std::uint32_t level) const;

  /// Cumulative estimated cost of refining from level `from` down to `to`
  /// (0 when to >= from).
  double cost_between(std::uint32_t from, std::uint32_t to) const;

  /// Deepest (finest) level reachable from `from` within `budget` cost
  /// seconds, never finer than `floor_level`. Returns `from` when even the
  /// first step does not fit — the base is always served.
  std::uint32_t reachable_level(std::uint32_t from, double budget,
                                std::uint32_t floor_level) const;

 private:
  std::vector<LevelCostEstimate> steps_;
};

}  // namespace canopus::serve
