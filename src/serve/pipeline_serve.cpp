// Pipeline facade entry points into the serve module.
//
// These are member functions of canopus::Pipeline, declared in
// core/pipeline.hpp but defined here: serve links against core, so core's own
// TUs never reference serve symbols and the layering stays acyclic. Any
// binary calling Pipeline::submit_query()/query_scheduler() links canopus
// (the umbrella), which carries this TU.

#include "core/pipeline.hpp"
#include "serve/query_scheduler.hpp"

namespace canopus {

serve::QueryScheduler& Pipeline::query_scheduler() {
  // With tiering enabled the advisor must exist before the first query, or
  // no heat is recorded and the placement loop never closes. Created outside
  // the call_once body: tier_advisor() takes fabric_mu_ itself, so creating
  // it inside would self-deadlock.
  if (options_.tiering.has_value() && options_.tiering->enabled) {
    tier_advisor();
  }
  std::call_once(scheduler_once_, [this] {
    auto scheduler = std::make_shared<serve::QueryScheduler>(
        *hierarchy_, options_.serve.value_or(serve::ServeConfig{}),
        options_.parallel,
        session_pool_.has_value() ? &*session_pool_ : nullptr);
    // Route across the attached fabric (if any), and keep routing current
    // when the fabric is attached or swapped later: Pipeline::attach_fabric
    // (fabric module) fires this hook under the same mutex. The hook
    // captures the shared_ptr, not `this`, so it stays valid for the
    // scheduler's whole lifetime. Composed with (not replacing) any hook the
    // tier advisor installed before us.
    std::scoped_lock lock(fabric_mu_);
    scheduler->attach_fabric(fabric_);
    auto previous = std::move(on_fabric_change_);
    on_fabric_change_ = [scheduler, previous = std::move(previous)](
                            fabric::Fabric* fabric) {
      if (previous) previous(fabric);
      scheduler->attach_fabric(fabric);
    };
    // Predicted-residency source: use the advisor if it exists, and pick it
    // up later if Pipeline::tier_advisor() creates one after us.
    scheduler->attach_tier_advisor(advisor_raw_);
    on_advisor_change_ = [scheduler](tiering::TierAdvisor* advisor) {
      scheduler->attach_tier_advisor(advisor);
    };
    scheduler_ = std::move(scheduler);
  });
  return *scheduler_;
}

Status Pipeline::submit_query(const serve::QueryRequest& request,
                              serve::QueryResult* result) {
  if (result == nullptr) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "submit_query: result must not be null");
  }
  return query_scheduler().execute(request, result);
}

}  // namespace canopus
