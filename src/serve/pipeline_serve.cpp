// Pipeline facade entry points into the serve module.
//
// These are member functions of canopus::Pipeline, declared in
// core/pipeline.hpp but defined here: serve links against core, so core's own
// TUs never reference serve symbols and the layering stays acyclic. Any
// binary calling Pipeline::submit_query()/query_scheduler() links canopus
// (the umbrella), which carries this TU.

#include "core/pipeline.hpp"
#include "serve/query_scheduler.hpp"

namespace canopus {

serve::QueryScheduler& Pipeline::query_scheduler() {
  std::call_once(scheduler_once_, [this] {
    auto scheduler = std::make_shared<serve::QueryScheduler>(
        *hierarchy_, options_.serve.value_or(serve::ServeConfig{}),
        options_.parallel,
        session_pool_.has_value() ? &*session_pool_ : nullptr);
    // Route across the attached fabric (if any), and keep routing current
    // when the fabric is attached or swapped later: Pipeline::attach_fabric
    // (fabric module) fires this hook under the same mutex. The hook
    // captures the shared_ptr, not `this`, so it stays valid for the
    // scheduler's whole lifetime.
    std::scoped_lock lock(fabric_mu_);
    scheduler->attach_fabric(fabric_);
    on_fabric_change_ = [scheduler](fabric::Fabric* fabric) {
      scheduler->attach_fabric(fabric);
    };
    scheduler_ = std::move(scheduler);
  });
  return *scheduler_;
}

Status Pipeline::submit_query(const serve::QueryRequest& request,
                              serve::QueryResult* result) {
  if (result == nullptr) {
    return Status::failure(StatusCode::kInvalidArgument,
                           "submit_query: result must not be null");
  }
  return query_scheduler().execute(request, result);
}

}  // namespace canopus
