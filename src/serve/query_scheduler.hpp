#pragma once
// Deadline-aware query scheduling with admission control.
//
// The paper's elastic-analytics promise (Algorithm 3, Section III-E) is that
// readers trade accuracy for end-to-end speed. Under heavy multi-client load
// that trade must be *arbitrated*: left alone, every session greedily
// refines to its target and the slow tiers saturate. The QueryScheduler is
// that arbiter — the first piece of the repo that behaves like a
// multi-tenant service rather than a library:
//
//   * Admission control. The queue is bounded (ServeConfig::queue_limit);
//     a submission past the bound is shed *immediately* with
//     StatusCode::kOverloaded. Backpressure instead of unbounded queuing:
//     under overload, latency stays bounded and clients learn to back off.
//   * Deadline planning. Each admitted query gets a retrieval-cost budget
//     (its deadline, in RetrievalTimings::total() seconds — simulated tier
//     I/O plus measured compute, so plans are machine-independent and tests
//     deterministic). A per-level CostModel (serve/cost_model.hpp) built
//     from product metadata, cache residency, and observed tier latencies
//     plans the reachable level before any delta is fetched.
//   * Elastic degradation. Execution re-checks the remaining budget before
//     every refinement step (ProgressiveReader::refine_while). When the
//     deadline stops refinement above the target level the query still
//     returns its coarser field — Status degraded, achieved level and delta
//     RMS reported — which Canopus treats as an answer, not an error.
//   * Priority aging. Workers pop the waiting query with the highest
//     effective priority = priority + age_boost * wait_seconds, so urgent
//     queries jump the queue but a steady high-priority stream cannot
//     starve patient low-priority ones.
//
// Queries execute on the pipeline's shared session pool; results are
// bitwise-identical to an unscheduled read at the same achieved level (the
// scheduler decides *how far* to refine, never *how* — the restoration path
// is untouched).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/cost_model.hpp"
#include "serve/serve_config.hpp"

namespace canopus::fabric {
class Fabric;
}  // namespace canopus::fabric

namespace canopus::serve {

/// One analytics query: which variable, how accurate, by when, how urgent.
struct QueryRequest {
  std::string path;
  std::string var;
  /// Accuracy target: refine to this level (0 = full accuracy). Clamped to
  /// the variable's coarsest level.
  std::uint32_t target_level = 0;
  /// Alternative accuracy target: stop once the RMS of the applied delta
  /// drops below this threshold (must be finite). When set it replaces
  /// target_level as the stop criterion; the deadline still caps the work.
  std::optional<double> rmse_threshold;
  /// Retrieval-cost budget in seconds (RetrievalTimings::total(): simulated
  /// tier I/O + measured compute). Unset: ServeConfig default. Must be
  /// finite and > 0.
  std::optional<double> deadline_seconds;
  /// Larger = more urgent. Any int; 0 is the neutral default.
  int priority = 0;
  /// Campaign-lifetime geometry; must outlive the query's completion.
  const core::GeometryCache* geometry = nullptr;
};

/// What a served query returns. `values`/`mesh` are the field at the
/// achieved level — bitwise-identical to an unscheduled read refined to the
/// same level.
struct QueryResult {
  mesh::Field values;
  mesh::TriMesh mesh;
  std::uint32_t achieved_level = 0;
  std::uint32_t planned_level = 0;  // the cost model's pre-execution plan
  std::uint32_t target_level = 0;   // clamped request target
  /// RMS of the last applied delta — the achieved-accuracy proxy the
  /// degradation policy reports (0 when no refinement ran).
  double delta_rms = 0.0;
  double deadline_seconds = 0.0;    // the budget the query ran under
  core::RetrievalTimings timings;   // actual retrieval cost (incl. base)
  double queue_seconds = 0.0;       // wall time spent waiting for a worker
  std::uint64_t dispatch_order = 0; // global execution sequence (1-based)
  /// Fabric node the query was dispatched to (-1 = the scheduler's own
  /// hierarchy, no fabric attached). Tests assert a query planned after a
  /// detach never lands on the removed node.
  std::int32_t shard = -1;
  /// Directory epoch the final plan was built against. A topology change
  /// mid-query bumps the epoch; the scheduler rebuilds its cost model when
  /// it notices (see run_query), and this reports the last epoch used.
  std::uint64_t topology_epoch = 0;
};

struct QueryOutcome {
  Status status;
  QueryResult result;
};

class QueryScheduler {
 public:
  /// `hierarchy` must outlive the scheduler. `session_pool`, when given, is
  /// the pool every query's reader fans out on (the Pipeline's session
  /// pool); null falls back to `parallel`'s per-reader behavior.
  QueryScheduler(storage::StorageHierarchy& hierarchy, ServeConfig config,
                 core::ParallelConfig parallel,
                 util::ThreadPool* session_pool = nullptr);

  /// Sheds every still-queued query with kOverloaded, then joins workers.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Non-blocking admission: validates, then either enqueues (future
  /// resolves when a worker finishes the query) or sheds immediately with
  /// kOverloaded when queue_limit queries are already waiting. Never throws.
  std::future<QueryOutcome> submit(QueryRequest request);

  /// Blocking convenience: submit + wait. `result` receives the payload on
  /// any usable outcome (ok, retried, or degraded).
  Status execute(const QueryRequest& request, QueryResult* result);

  /// Admission gate for maintenance and deterministic tests: while paused,
  /// workers stop dispatching. Submissions still enqueue (and shed past the
  /// bound), so a paused scheduler fills its queue reproducibly.
  void pause();
  void resume();

  /// Dispatches subsequent queries across the fabric's shards: each query
  /// runs against the alive node owning the most bytes of its variable
  /// (Fabric::route_query), with remote chunks resolved transparently and
  /// the cost model charging the network envelope for them. The fabric must
  /// outlive the scheduler; pass nullptr to fall back to the constructor's
  /// hierarchy. Safe to call while queries are in flight (they pick up the
  /// new routing on their next dispatch).
  void attach_fabric(fabric::Fabric* fabric) {
    fabric_.store(fabric, std::memory_order_release);
  }

  /// Plugs the workload-adaptive tier advisor in: queries record their
  /// access intent into its HeatTracker before refining (the heat signal
  /// that drives promotion), and the cost model prices blocks at the
  /// advisor's predicted residency instead of the current placement. The
  /// advisor must outlive the scheduler; pass nullptr to detach. Safe to
  /// call while queries are in flight.
  void attach_tier_advisor(tiering::TierAdvisor* advisor) {
    advisor_.store(advisor, std::memory_order_release);
  }

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;       // kOverloaded at submit or shutdown
    std::uint64_t completed = 0;  // usable outcomes (ok/retried/degraded)
    std::uint64_t degraded = 0;   // subset of completed
    std::uint64_t failed = 0;     // not usable (kNotFound, kIoError, ...)
    std::size_t max_queue_depth = 0;
  };
  Stats stats() const;
  std::size_t queue_depth() const;
  const ServeConfig& config() const { return config_; }

  /// The aging rule, exposed for tests: effective priority of a query that
  /// has waited `wait_seconds`.
  static double effective_priority(int priority, double wait_seconds,
                                   double age_boost) {
    return static_cast<double>(priority) + age_boost * wait_seconds;
  }

 private:
  struct Pending {
    QueryRequest request;
    std::promise<QueryOutcome> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();
  QueryOutcome run_query(QueryRequest request, double queue_seconds);
  /// kInvalidArgument for malformed requests, nullopt when admissible.
  static std::optional<Status> validate(const QueryRequest& request);

  storage::StorageHierarchy& hierarchy_;
  const ServeConfig config_;
  const core::ParallelConfig parallel_;
  util::ThreadPool* session_pool_;  // not owned; may be null
  std::atomic<fabric::Fabric*> fabric_{nullptr};  // not owned; may be null
  std::atomic<tiering::TierAdvisor*> advisor_{nullptr};  // not owned; may be null
  Calibration calibration_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  bool paused_ = false;
  Stats stats_;
  std::atomic<std::uint64_t> dispatch_seq_{0};
  std::vector<std::thread> workers_;  // last: joins before members die
};

}  // namespace canopus::serve
