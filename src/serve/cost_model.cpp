#include "serve/cost_model.hpp"

#include <algorithm>

#include "adios/bp.hpp"
#include "cache/block_cache.hpp"
#include "obs/metrics.hpp"
#include "tiering/tier_advisor.hpp"
#include "util/assert.hpp"

namespace canopus::serve {

void Calibration::observe_compute(std::size_t bytes, double seconds) {
  if (bytes == 0 || !(seconds > 0.0)) return;
  const double sample = seconds / static_cast<double>(bytes);
  double current = ewma_.load(std::memory_order_relaxed);
  double next = 0.0;
  do {
    next = 0.8 * current + 0.2 * sample;
  } while (!ewma_.compare_exchange_weak(current, next,
                                        std::memory_order_relaxed));
}

double Calibration::tier_factor(const storage::StorageTier& tier) {
  if (!obs::enabled()) return 1.0;
  auto& registry = obs::MetricsRegistry::global();
  const std::string& name = tier.spec().name;
  const obs::Histogram& latency =
      registry.histogram("storage." + name + ".read_us");
  const std::uint64_t samples = latency.count();
  if (samples < 16) return 1.0;  // too little signal to overrule the spec
  const std::uint64_t reads =
      registry.counter("storage." + name + ".reads").value();
  const std::uint64_t bytes =
      registry.counter("storage." + name + ".read_bytes").value();
  if (reads == 0) return 1.0;
  const double observed_mean_seconds =
      latency.sum() / 1e6 / static_cast<double>(samples);
  const double mean_read_bytes =
      static_cast<double>(bytes) / static_cast<double>(reads);
  const double predicted_seconds =
      tier.read_cost(static_cast<std::size_t>(mean_read_bytes));
  if (!(predicted_seconds > 0.0)) return 1.0;
  // Clamped: the histogram mixes block sizes, so the ratio is a trend
  // signal, not a precise measurement.
  return std::clamp(observed_mean_seconds / predicted_seconds, 0.25, 4.0);
}

CostModel CostModel::build(storage::StorageHierarchy& hierarchy,
                           const core::ProgressiveReader& reader,
                           const Calibration* calibration,
                           const tiering::TierAdvisor* advisor) {
  CostModel model;
  const std::size_t levels = reader.level_count();
  if (levels <= 1) return model;
  model.steps_.assign(levels - 1, LevelCostEstimate{});
  for (std::uint32_t l = 0; l < model.steps_.size(); ++l) {
    model.steps_[l].level = l;
  }

  const double seconds_per_byte = calibration != nullptr
                                      ? calibration->compute_seconds_per_byte()
                                      : Calibration::kPriorSecondsPerByte;
  std::vector<double> tier_factors(hierarchy.tier_count(), 1.0);
  for (std::size_t i = 0; i < tier_factors.size(); ++i) {
    tier_factors[i] = Calibration::tier_factor(hierarchy.tier(i));
  }

  const cache::BlockCache* cache = hierarchy.block_cache();
  const adios::VarInfo info = reader.var_info();
  for (const auto& b : info.blocks) {
    if (b.level >= model.steps_.size()) continue;  // base-level blocks
    const bool data = b.kind == adios::BlockKind::kDelta;
    // Without a GeometryCache each step also reads the fine level's mesh and
    // mapping blocks; the chunk index is only touched by regional reads.
    const bool geometry = !reader.has_geometry() &&
                          (b.kind == adios::BlockKind::kMesh ||
                           b.kind == adios::BlockKind::kMapping);
    if (!data && !geometry) continue;

    LevelCostEstimate& step = model.steps_[b.level];
    step.bytes += static_cast<std::size_t>(b.stored_bytes);
    cache::BlockCache::Residency residency;
    if (cache != nullptr) {
      residency = cache->probe(
          b.object_key, storage::StorageHierarchy::decoded_alias(b.object_key));
    }
    if (residency.blob || residency.decoded) {
      ++step.cached_blocks;  // I/O free: the blob never leaves the cache
    } else {
      const auto stored = static_cast<std::size_t>(b.stored_bytes);
      // The record's tier index describes where the *writer* placed the
      // block — on a fabric node that may be another node's hierarchy
      // entirely, and even locally eviction may have demoted it. Charge the
      // tier that actually holds the block; a block no local tier holds is
      // remote-resident, and pretending its record tier were local would
      // undercount the network envelope and overplan the reachable level.
      if (const auto local = hierarchy.find(b.object_key)) {
        // An attached tier advisor may have already *planned* a move for
        // this block; price its predicted tier so the plan matches what the
        // query will read from (predictions only override locally resident
        // blocks — the remote envelope below is never second-guessed).
        std::size_t where = *local;
        if (advisor != nullptr) {
          const auto predicted = advisor->predicted_tier(b.object_key);
          if (predicted.has_value() && *predicted < hierarchy.tier_count()) {
            where = *predicted;
          }
        }
        step.io_seconds +=
            tier_factors[where] * hierarchy.tier(where).read_cost(stored);
      } else if (const auto* remote = hierarchy.remote_store()) {
        step.io_seconds += remote->estimated_read_cost(b.object_key, stored);
      } else {
        step.io_seconds +=
            tier_factors[b.tier] * hierarchy.tier(b.tier).read_cost(stored);
      }
    }
    if (!residency.decoded) {
      step.compute_seconds +=
          seconds_per_byte * static_cast<double>(b.stored_bytes);
    }
  }
  return model;
}

const LevelCostEstimate& CostModel::step(std::uint32_t level) const {
  CANOPUS_CHECK(level < steps_.size(), "cost model: level out of range");
  return steps_[level];
}

double CostModel::cost_between(std::uint32_t from, std::uint32_t to) const {
  double cost = 0.0;
  for (std::uint32_t l = to; l < from && l < steps_.size(); ++l) {
    cost += steps_[l].total();
  }
  return cost;
}

std::uint32_t CostModel::reachable_level(std::uint32_t from, double budget,
                                         std::uint32_t floor_level) const {
  std::uint32_t level = from;
  double spent = 0.0;
  while (level > floor_level && level > 0) {
    const std::uint32_t next = level - 1;
    if (next >= steps_.size()) break;  // defensive: malformed metadata
    const double step_cost = steps_[next].total();
    if (spent + step_cost > budget) break;
    spent += step_cost;
    level = next;
  }
  return level;
}

}  // namespace canopus::serve
