#pragma once
// Structural invariant checks for TriMesh, used by tests and by the
// decimator's debug mode to catch connectivity corruption early.

#include <string>
#include <vector>

#include "mesh/tri_mesh.hpp"

namespace canopus::mesh {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> problems;

  std::size_t vertex_count = 0;
  std::size_t edge_count = 0;
  std::size_t triangle_count = 0;
  std::size_t boundary_edge_count = 0;
  /// V - E + F (no outer face); 1 for a disk, 0 for an annulus.
  long euler_characteristic = 0;

  void fail(std::string why) {
    ok = false;
    problems.push_back(std::move(why));
  }
};

/// Checks: indices in range, no degenerate/duplicate/zero-area triangles,
/// every edge shared by at most two triangles (manifoldness), no isolated
/// vertices, consistent CCW orientation.
ValidationReport validate(const TriMesh& mesh);

}  // namespace canopus::mesh
