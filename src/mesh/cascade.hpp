#pragma once
// Builds the multi-level decimation hierarchy {L^0 ... L^{N-1}}.
//
// Level 0 is the original mesh/data; each subsequent level halves (by
// default) the vertex count via edge collapse, so the decimation ratio of
// level l relative to the original is d_l = step^l (the paper's d_l = 2^l).

#include <vector>

#include "mesh/decimate.hpp"
#include "mesh/tri_mesh.hpp"

namespace canopus::mesh {

struct CascadeOptions {
  /// Number of levels including the original; N=3 produces L0, L1, L2.
  std::size_t levels = 3;
  /// Per-step decimation ratio; the cumulative ratio at level l is step^l.
  double step = 2.0;
  DecimateOptions decimate;
};

struct Cascade {
  /// levels[l] holds G^l and L^l; levels[0] is the input.
  std::vector<LevelData> levels;

  std::size_t level_count() const { return levels.size(); }
  const LevelData& base() const { return levels.back(); }

  /// |V^0| / |V^l|.
  double decimation_ratio(std::size_t l) const {
    return static_cast<double>(levels[0].mesh.vertex_count()) /
           static_cast<double>(levels[l].mesh.vertex_count());
  }
};

/// Runs `levels - 1` decimation passes. Per-pass statistics (collapses,
/// rejections, achieved ratio) are recorded in `pass_stats` when non-null.
Cascade build_cascade(const TriMesh& mesh, const Field& values,
                      const CascadeOptions& options,
                      std::vector<DecimateResult>* pass_stats = nullptr);

}  // namespace canopus::mesh
