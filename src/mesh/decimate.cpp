#include "mesh/decimate.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace canopus::mesh {

namespace {

/// Mutable mesh scratch state for the collapse loop. Vertex slot `i` survives
/// a collapse of edge (i, j) and is moved to the midpoint; slot `j` dies.
struct Workspace {
  std::vector<Vec2> pos;
  std::vector<double> val;
  std::vector<bool> vertex_alive;
  std::vector<std::vector<VertexId>> nbr;        // adjacent alive vertices
  std::vector<Triangle> tris;
  std::vector<bool> tri_alive;
  std::vector<std::vector<TriangleId>> inc;      // incident alive triangles
  std::vector<std::uint32_t> version;            // bumped on any change at v

  static void list_insert(std::vector<VertexId>& xs, VertexId v) {
    if (std::find(xs.begin(), xs.end(), v) == xs.end()) xs.push_back(v);
  }
  static void list_erase(std::vector<VertexId>& xs, VertexId v) {
    auto it = std::find(xs.begin(), xs.end(), v);
    if (it != xs.end()) {
      *it = xs.back();
      xs.pop_back();
    }
  }
  static void tri_list_erase(std::vector<TriangleId>& xs, TriangleId t) {
    auto it = std::find(xs.begin(), xs.end(), t);
    if (it != xs.end()) {
      *it = xs.back();
      xs.pop_back();
    }
  }
};

struct HeapEntry {
  double priority;
  VertexId a, b;
  std::uint32_t va_version, vb_version;
  // Min-heap via reversed comparison in a max-priority_queue.
  bool operator<(const HeapEntry& o) const { return priority > o.priority; }
};

class Decimator {
 public:
  Decimator(const TriMesh& mesh, const Field& values, const DecimateOptions& opt)
      : opt_(opt), rng_(opt.seed) {
    CANOPUS_CHECK(values.size() == mesh.vertex_count(),
                  "field size does not match vertex count");
    CANOPUS_CHECK(opt.ratio >= 1.0, "decimation ratio must be >= 1");
    ws_.pos = mesh.vertices();
    ws_.val = values;
    ws_.vertex_alive.assign(ws_.pos.size(), true);
    ws_.tris = mesh.triangles();
    ws_.tri_alive.assign(ws_.tris.size(), true);
    ws_.version.assign(ws_.pos.size(), 0);
    ws_.nbr.assign(ws_.pos.size(), {});
    ws_.inc.assign(ws_.pos.size(), {});
    for (TriangleId t = 0; t < ws_.tris.size(); ++t) {
      for (VertexId v : ws_.tris[t].v) ws_.inc[v].push_back(t);
    }
    for (const auto& e : mesh.edges()) {
      ws_.nbr[e.a].push_back(e.b);
      ws_.nbr[e.b].push_back(e.a);
    }
    // Scale-aware degeneracy threshold (squared area units).
    const auto box = mesh.bounds();
    const double diag2 = box.width() * box.width() + box.height() * box.height();
    min_area2_ = 1e-14 * diag2;
    if (opt.priority == EdgePriority::kGradientWeighted) {
      const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
      value_range_ = std::max(*hi - *lo, 1e-300);
    }
    for (const auto& e : mesh.edges()) push_edge(e.a, e.b);
  }

  DecimateResult run() {
    const std::size_t n0 = ws_.pos.size();
    const double cut_fraction_target = 1.0 - 1.0 / opt_.ratio;
    std::size_t cut = 0;
    std::size_t rejected = 0;
    while (static_cast<double>(cut) / static_cast<double>(n0) < cut_fraction_target &&
           !heap_.empty()) {
      const HeapEntry e = heap_.top();
      heap_.pop();
      if (!entry_valid(e)) continue;
      if (try_collapse(e.a, e.b)) {
        ++cut;
      } else {
        ++rejected;
      }
    }
    DecimateResult r = compact();
    r.achieved_ratio = static_cast<double>(n0) / static_cast<double>(r.mesh.vertex_count());
    r.collapses = cut;
    r.rejected = rejected;
    return r;
  }

 private:
  double edge_priority(VertexId a, VertexId b) {
    const double len = distance(ws_.pos[a], ws_.pos[b]);
    switch (opt_.priority) {
      case EdgePriority::kShortestFirst:
        return len;
      case EdgePriority::kRandom:
        return rng_.uniform();
      case EdgePriority::kGradientWeighted:
        return len * (1.0 + opt_.gradient_weight *
                                std::abs(ws_.val[a] - ws_.val[b]) / value_range_);
    }
    CANOPUS_UNREACHABLE("unknown edge priority");
  }

  void push_edge(VertexId a, VertexId b) {
    heap_.push(HeapEntry{edge_priority(a, b), a, b, ws_.version[a], ws_.version[b]});
  }

  bool entry_valid(const HeapEntry& e) const {
    return ws_.vertex_alive[e.a] && ws_.vertex_alive[e.b] &&
           ws_.version[e.a] == e.va_version && ws_.version[e.b] == e.vb_version &&
           std::find(ws_.nbr[e.a].begin(), ws_.nbr[e.a].end(), e.b) != ws_.nbr[e.a].end();
  }

  /// Link condition: the set of vertices adjacent to both endpoints must be
  /// exactly the opposite vertices of the triangles sharing the edge.
  bool link_condition_ok(VertexId i, VertexId j) const {
    std::vector<VertexId> opposite;
    for (TriangleId t : ws_.inc[i]) {
      if (!ws_.tri_alive[t]) continue;
      const auto& tv = ws_.tris[t].v;
      const bool has_j = tv[0] == j || tv[1] == j || tv[2] == j;
      if (!has_j) continue;
      for (VertexId v : tv) {
        if (v != i && v != j) opposite.push_back(v);
      }
    }
    std::size_t common = 0;
    for (VertexId n : ws_.nbr[i]) {
      if (std::find(ws_.nbr[j].begin(), ws_.nbr[j].end(), n) != ws_.nbr[j].end()) {
        ++common;
        if (std::find(opposite.begin(), opposite.end(), n) == opposite.end()) {
          return false;  // shared neighbor not across the edge -> pinch
        }
      }
    }
    return common == opposite.size() && !opposite.empty();
  }

  /// Checks every surviving triangle around i or j keeps positive area when
  /// the collapsed endpoint moves to `m`.
  bool geometry_ok(VertexId i, VertexId j, Vec2 m) const {
    auto survives_ok = [&](VertexId endpoint) {
      for (TriangleId t : ws_.inc[endpoint]) {
        if (!ws_.tri_alive[t]) continue;
        const auto& tv = ws_.tris[t].v;
        const bool has_i = tv[0] == i || tv[1] == i || tv[2] == i;
        const bool has_j = tv[0] == j || tv[1] == j || tv[2] == j;
        if (has_i && has_j) continue;  // dies with the collapse
        Vec2 p[3];
        for (int k = 0; k < 3; ++k) {
          p[k] = (tv[k] == i || tv[k] == j) ? m : ws_.pos[tv[k]];
        }
        if (signed_area2(p[0], p[1], p[2]) <= min_area2_) return false;
      }
      return true;
    };
    return survives_ok(i) && survives_ok(j);
  }

  bool try_collapse(VertexId i, VertexId j) {
    if (!link_condition_ok(i, j)) return false;
    const Vec2 m = (ws_.pos[i] + ws_.pos[j]) * 0.5;  // NewVertex(Vi, Vj)
    if (!geometry_ok(i, j, m)) return false;

    // Kill triangles containing the edge.
    for (TriangleId t : ws_.inc[i]) {
      if (!ws_.tri_alive[t]) continue;
      const auto& tv = ws_.tris[t].v;
      if (tv[0] == j || tv[1] == j || tv[2] == j) {
        ws_.tri_alive[t] = false;
        for (VertexId v : tv) {
          if (v != i) Workspace::tri_list_erase(ws_.inc[v], t);
        }
      }
    }
    ws_.inc[i].erase(std::remove_if(ws_.inc[i].begin(), ws_.inc[i].end(),
                                    [&](TriangleId t) { return !ws_.tri_alive[t]; }),
                     ws_.inc[i].end());

    // Rewire triangles that referenced only j.
    for (TriangleId t : ws_.inc[j]) {
      if (!ws_.tri_alive[t]) continue;
      for (VertexId& v : ws_.tris[t].v) {
        if (v == j) v = i;
      }
      ws_.inc[i].push_back(t);
    }
    ws_.inc[j].clear();

    // Merge adjacency: neighbors of j become neighbors of i.
    for (VertexId n : ws_.nbr[j]) {
      if (n == i) continue;
      Workspace::list_erase(ws_.nbr[n], j);
      Workspace::list_insert(ws_.nbr[n], i);
      Workspace::list_insert(ws_.nbr[i], n);
    }
    Workspace::list_erase(ws_.nbr[i], j);
    ws_.nbr[j].clear();

    // Move i to the midpoint, average the data (NewData = mean).
    ws_.pos[i] = m;
    ws_.val[i] = (ws_.val[i] + ws_.val[j]) * 0.5;
    ws_.vertex_alive[j] = false;
    collapse_log_.emplace_back(i, j);

    // Invalidate stale heap entries and re-key every edge incident to i.
    ++ws_.version[i];
    ++ws_.version[j];
    for (VertexId n : ws_.nbr[i]) push_edge(i, n);
    return true;
  }

  DecimateResult compact() const {
    std::vector<VertexId> remap(ws_.pos.size(), kInvalidVertex);
    std::vector<Vec2> vertices;
    Field values;
    auto has_live_triangle = [&](VertexId v) {
      for (TriangleId t : ws_.inc[v]) {
        if (ws_.tri_alive[t]) return true;
      }
      return false;
    };
    // A collapse can orphan a boundary-corner vertex whose only triangle died;
    // drop such vertices so the compacted mesh has no isolated vertices.
    std::vector<VertexId> survivors;
    for (VertexId v = 0; v < ws_.pos.size(); ++v) {
      if (ws_.vertex_alive[v] && has_live_triangle(v)) {
        remap[v] = static_cast<VertexId>(vertices.size());
        vertices.push_back(ws_.pos[v]);
        values.push_back(ws_.val[v]);
        survivors.push_back(v);
      }
    }
    std::vector<Triangle> tris;
    for (TriangleId t = 0; t < ws_.tris.size(); ++t) {
      if (!ws_.tri_alive[t]) continue;
      Triangle tri = ws_.tris[t];
      for (VertexId& v : tri.v) v = remap[v];
      tris.push_back(tri);
    }
    DecimateResult r;
    r.mesh = TriMesh(std::move(vertices), std::move(tris));
    r.values = std::move(values);
    r.collapse_log = collapse_log_;
    r.survivor_slots = std::move(survivors);
    return r;
  }

  DecimateOptions opt_;
  util::Rng rng_;
  Workspace ws_;
  std::priority_queue<HeapEntry> heap_;
  std::vector<std::pair<VertexId, VertexId>> collapse_log_;
  double min_area2_ = 0.0;
  double value_range_ = 1.0;
};

}  // namespace

DecimateResult decimate(const TriMesh& mesh, const Field& values,
                        const DecimateOptions& options) {
  Decimator d(mesh, values, options);
  return d.run();
}

Field replay_decimation(const DecimateResult& recipe, const Field& values) {
  Field work = values;
  for (const auto& [i, j] : recipe.collapse_log) {
    CANOPUS_CHECK(i < work.size() && j < work.size(),
                  "replay: collapse log does not match field size");
    work[i] = (work[i] + work[j]) * 0.5;
  }
  Field out;
  out.reserve(recipe.survivor_slots.size());
  for (VertexId slot : recipe.survivor_slots) {
    CANOPUS_CHECK(slot < work.size(), "replay: survivor slot out of range");
    out.push_back(work[slot]);
  }
  return out;
}

}  // namespace canopus::mesh
