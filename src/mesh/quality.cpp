#include "mesh/quality.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace canopus::mesh {

QualityStats quality_stats(const TriMesh& mesh) {
  CANOPUS_CHECK(mesh.triangle_count() > 0, "quality: empty mesh");
  QualityStats q;
  q.min_angle_deg = 180.0;
  double sum_min_angle = 0.0;
  double sum_aspect = 0.0;

  const auto& verts = mesh.vertices();
  for (const auto& t : mesh.triangles()) {
    const Vec2 a = verts[t.v[0]], b = verts[t.v[1]], c = verts[t.v[2]];
    const double la = distance(b, c);
    const double lb = distance(a, c);
    const double lc = distance(a, b);
    const double area = triangle_area(a, b, c);

    // Interior angles via the law of cosines (clamped for robustness).
    auto angle = [](double opposite, double s1, double s2) {
      const double cosv =
          std::clamp((s1 * s1 + s2 * s2 - opposite * opposite) /
                         std::max(2.0 * s1 * s2, 1e-300),
                     -1.0, 1.0);
      return std::acos(cosv) * 180.0 / std::numbers::pi;
    };
    const double min_angle = std::min(
        {angle(la, lb, lc), angle(lb, la, lc), angle(lc, la, lb)});
    q.min_angle_deg = std::min(q.min_angle_deg, min_angle);
    sum_min_angle += min_angle;
    if (min_angle < 2.0) ++q.sliver_count;

    // Aspect = longest edge / shortest altitude; altitude = 2*area / edge.
    const double longest = std::max({la, lb, lc});
    const double altitude = area > 0.0 ? 2.0 * area / longest : 0.0;
    const double aspect = altitude > 0.0 ? longest / altitude : 1e300;
    q.max_aspect_ratio = std::max(q.max_aspect_ratio, aspect);
    sum_aspect += std::min(aspect, 1e300);
  }
  const double n = static_cast<double>(mesh.triangle_count());
  q.mean_min_angle_deg = sum_min_angle / n;
  q.mean_aspect_ratio = sum_aspect / n;
  return q;
}

}  // namespace canopus::mesh
