#pragma once
// Triangle-quality metrics: edge-collapse decimation must not degrade the
// mesh into slivers, or interpolation (Estimate, rasterization) loses
// accuracy. Used by tests and the refactoring gallery.

#include "mesh/tri_mesh.hpp"

namespace canopus::mesh {

struct QualityStats {
  double min_angle_deg = 0.0;    // smallest interior angle anywhere
  double mean_min_angle_deg = 0.0;  // mean over triangles of their min angle
  double max_aspect_ratio = 0.0;    // longest edge / shortest altitude
  double mean_aspect_ratio = 0.0;
  std::size_t sliver_count = 0;     // triangles with min angle < 2 degrees
};

/// Computes per-triangle quality aggregates. Requires a non-empty mesh.
QualityStats quality_stats(const TriMesh& mesh);

}  // namespace canopus::mesh
