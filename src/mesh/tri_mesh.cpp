#include "mesh/tri_mesh.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace canopus::mesh {

TriMesh::TriMesh(std::vector<Vec2> vertices, std::vector<Triangle> triangles)
    : vertices_(std::move(vertices)), triangles_(std::move(triangles)) {
  for (const auto& t : triangles_) {
    for (VertexId v : t.v) {
      CANOPUS_CHECK(v < vertices_.size(), "triangle references missing vertex");
    }
    CANOPUS_CHECK(t.v[0] != t.v[1] && t.v[1] != t.v[2] && t.v[0] != t.v[2],
                  "degenerate triangle (repeated vertex)");
  }
}

const std::vector<Edge>& TriMesh::edges() const {
  if (!edges_built_) {
    edges_.clear();
    edges_.reserve(triangles_.size() * 3);
    for (const auto& t : triangles_) {
      edges_.emplace_back(t.v[0], t.v[1]);
      edges_.emplace_back(t.v[1], t.v[2]);
      edges_.emplace_back(t.v[2], t.v[0]);
    }
    std::sort(edges_.begin(), edges_.end());
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
    edges_built_ = true;
  }
  return edges_;
}

const std::vector<std::vector<VertexId>>& TriMesh::vertex_neighbors() const {
  if (!neighbors_built_) {
    neighbors_.assign(vertices_.size(), {});
    for (const auto& e : edges()) {
      neighbors_[e.a].push_back(e.b);
      neighbors_[e.b].push_back(e.a);
    }
    neighbors_built_ = true;
  }
  return neighbors_;
}

const std::vector<std::vector<TriangleId>>& TriMesh::vertex_triangles() const {
  if (!vertex_tris_built_) {
    vertex_tris_.assign(vertices_.size(), {});
    for (TriangleId t = 0; t < triangles_.size(); ++t) {
      for (VertexId v : triangles_[t].v) vertex_tris_[v].push_back(t);
    }
    vertex_tris_built_ = true;
  }
  return vertex_tris_;
}

Aabb TriMesh::bounds() const {
  Aabb box;
  if (vertices_.empty()) return box;
  box.lo = box.hi = vertices_[0];
  for (const auto& v : vertices_) box.expand(v);
  return box;
}

double TriMesh::total_area() const {
  double area = 0.0;
  for (const auto& t : triangles_) {
    area += triangle_area(vertices_[t.v[0]], vertices_[t.v[1]], vertices_[t.v[2]]);
  }
  return area;
}

std::vector<Edge> TriMesh::boundary_edges() const {
  std::map<Edge, int> count;
  for (const auto& t : triangles_) {
    ++count[Edge(t.v[0], t.v[1])];
    ++count[Edge(t.v[1], t.v[2])];
    ++count[Edge(t.v[2], t.v[0])];
  }
  std::vector<Edge> out;
  for (const auto& [e, c] : count) {
    if (c == 1) out.push_back(e);
  }
  return out;
}

void TriMesh::serialize(util::ByteWriter& out) const {
  out.put_varint(vertices_.size());
  for (const auto& v : vertices_) {
    out.put(v.x);
    out.put(v.y);
  }
  out.put_varint(triangles_.size());
  for (const auto& t : triangles_) {
    out.put_varint(t.v[0]);
    out.put_varint(t.v[1]);
    out.put_varint(t.v[2]);
  }
}

TriMesh TriMesh::deserialize(util::ByteReader& in) {
  const auto nv = in.get_varint();
  std::vector<Vec2> vertices;
  vertices.reserve(nv);
  for (std::uint64_t i = 0; i < nv; ++i) {
    Vec2 v;
    v.x = in.get<double>();
    v.y = in.get<double>();
    vertices.push_back(v);
  }
  const auto nt = in.get_varint();
  std::vector<Triangle> triangles;
  triangles.reserve(nt);
  for (std::uint64_t i = 0; i < nt; ++i) {
    Triangle t;
    t.v[0] = static_cast<VertexId>(in.get_varint());
    t.v[1] = static_cast<VertexId>(in.get_varint());
    t.v[2] = static_cast<VertexId>(in.get_varint());
    triangles.push_back(t);
  }
  return TriMesh(std::move(vertices), std::move(triangles));
}

namespace {
/// Interleaves the low 16 bits of x and y into a 32-bit Morton key.
std::uint32_t morton(std::uint16_t x, std::uint16_t y) {
  auto spread = [](std::uint32_t v) {
    v &= 0xFFFF;
    v = (v | (v << 8)) & 0x00FF00FF;
    v = (v | (v << 4)) & 0x0F0F0F0F;
    v = (v | (v << 2)) & 0x33333333;
    v = (v | (v << 1)) & 0x55555555;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}
}  // namespace

std::vector<VertexId> spatial_order(const TriMesh& mesh) {
  const auto box = mesh.bounds();
  const double sx = box.width() > 0 ? 65535.0 / box.width() : 0.0;
  const double sy = box.height() > 0 ? 65535.0 / box.height() : 0.0;
  std::vector<std::pair<std::uint32_t, VertexId>> keyed(mesh.vertex_count());
  for (VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    const auto qx = static_cast<std::uint16_t>((p.x - box.lo.x) * sx);
    const auto qy = static_cast<std::uint16_t>((p.y - box.lo.y) * sy);
    keyed[v] = {morton(qx, qy), v};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<VertexId> order(mesh.vertex_count());
  for (std::size_t i = 0; i < keyed.size(); ++i) order[i] = keyed[i].second;
  return order;
}

}  // namespace canopus::mesh
