#pragma once
// Immutable unstructured triangular mesh: the data model Canopus refactors.
//
// A TriMesh is the G^l(V^l, E^l) of the paper: vertex positions plus triangle
// connectivity. Edges are derived from triangles. Field values (the L^l data)
// are stored separately as one double per vertex, which lets several
// variables share one mesh.

#include <array>
#include <cstdint>
#include <vector>

#include "mesh/geometry.hpp"
#include "util/byte_buffer.hpp"

namespace canopus::mesh {

using VertexId = std::uint32_t;
using TriangleId = std::uint32_t;
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

struct Triangle {
  std::array<VertexId, 3> v{kInvalidVertex, kInvalidVertex, kInvalidVertex};
  bool operator==(const Triangle&) const = default;
};

/// Undirected edge with canonical ordering a < b.
struct Edge {
  VertexId a = kInvalidVertex;
  VertexId b = kInvalidVertex;
  Edge() = default;
  Edge(VertexId u, VertexId v) : a(u < v ? u : v), b(u < v ? v : u) {}
  bool operator==(const Edge&) const = default;
  auto operator<=>(const Edge&) const = default;
};

class TriMesh {
 public:
  TriMesh() = default;
  TriMesh(std::vector<Vec2> vertices, std::vector<Triangle> triangles);

  std::size_t vertex_count() const { return vertices_.size(); }
  std::size_t triangle_count() const { return triangles_.size(); }

  const std::vector<Vec2>& vertices() const { return vertices_; }
  const std::vector<Triangle>& triangles() const { return triangles_; }
  Vec2 vertex(VertexId v) const { return vertices_[v]; }
  const Triangle& triangle(TriangleId t) const { return triangles_[t]; }

  /// Unique undirected edges, sorted; built on first use and cached.
  const std::vector<Edge>& edges() const;

  /// Per-vertex adjacent-vertex lists; built on first use and cached.
  const std::vector<std::vector<VertexId>>& vertex_neighbors() const;

  /// Per-vertex incident-triangle lists; built on first use and cached.
  const std::vector<std::vector<TriangleId>>& vertex_triangles() const;

  /// Bounding box of all vertices (origin box for an empty mesh).
  Aabb bounds() const;

  /// Sum of triangle areas.
  double total_area() const;

  /// Edges that belong to exactly one triangle.
  std::vector<Edge> boundary_edges() const;

  /// Serialization for embedding meshes in BP containers.
  void serialize(util::ByteWriter& out) const;
  static TriMesh deserialize(util::ByteReader& in);

  bool operator==(const TriMesh& o) const {
    return vertices_ == o.vertices_ && triangles_ == o.triangles_;
  }

 private:
  std::vector<Vec2> vertices_;
  std::vector<Triangle> triangles_;

  // Lazily computed caches; mutable because they are pure functions of the
  // immutable vertex/triangle data.
  mutable std::vector<Edge> edges_;
  mutable bool edges_built_ = false;
  mutable std::vector<std::vector<VertexId>> neighbors_;
  mutable bool neighbors_built_ = false;
  mutable std::vector<std::vector<TriangleId>> vertex_tris_;
  mutable bool vertex_tris_built_ = false;
};

/// A scalar field sampled at mesh vertices — the L^l of the paper.
using Field = std::vector<double>;

/// Deterministic spatially coherent vertex ordering (Morton / Z-curve over
/// the mesh bounds). Both the Canopus writer and reader derive it from the
/// geometry alone, so spatially chunked products need no stored permutation:
/// position p in the ordering maps to vertex spatial_order(mesh)[p].
std::vector<VertexId> spatial_order(const TriMesh& mesh);

/// A mesh level paired with its field data.
struct LevelData {
  TriMesh mesh;
  Field values;
};

}  // namespace canopus::mesh
