#pragma once
// Edge-collapse mesh decimation — Algorithm 1 of the paper.
//
// Edges sit in a priority queue keyed (by default) on length; the shortest
// edge is collapsed to its midpoint, the field value to the mean of its two
// endpoint values (NewVertex/NewData of the paper), and the queue is updated
// with the freshly created edges. Collapsing stops when the requested
// decimation ratio |V^l| / |V^{l+1}| is reached.
//
// Beyond the paper's pseudocode we guard each collapse with the standard link
// condition plus a triangle-orientation check, so decimated meshes remain
// valid manifold triangulations at any ratio; rejected edges are simply
// skipped. Decimation is local (no cross-partition communication), which is
// what makes Canopus' refactoring embarrassingly parallel.

#include <cstdint>

#include "mesh/tri_mesh.hpp"

namespace canopus::mesh {

/// Edge-ordering strategies (the paper uses shortest-first and leaves the
/// choice application-dependent; the alternatives feed the ablation bench).
enum class EdgePriority {
  kShortestFirst,     // paper default: Euclidean edge length
  kRandom,            // uniform random order
  kGradientWeighted,  // length scaled up where the field changes quickly,
                      // so smooth regions coarsen first
};

struct DecimateOptions {
  /// Target |V^l| / |V^{l+1}|; 2.0 halves the vertex count.
  double ratio = 2.0;
  EdgePriority priority = EdgePriority::kShortestFirst;
  /// Seed for kRandom priority.
  std::uint64_t seed = 7;
  /// Strength of the data term for kGradientWeighted.
  double gradient_weight = 4.0;
};

struct DecimateResult {
  TriMesh mesh;    // G^{l+1}
  Field values;    // L^{l+1}
  /// Ratio actually achieved; can fall short of the request if every
  /// remaining collapse would break the mesh.
  double achieved_ratio = 1.0;
  std::size_t collapses = 0;
  std::size_t rejected = 0;

  /// Replay support: the committed collapses in order, as (surviving slot,
  /// dying slot) pairs in the *input* level's vertex indexing, plus the
  /// input slot each output vertex was compacted from. With kShortestFirst
  /// priority the collapse sequence depends only on geometry, so a different
  /// timestep's field over the same mesh decimates by replaying this log —
  /// no priority queue, no connectivity work (see replay_decimation).
  std::vector<std::pair<VertexId, VertexId>> collapse_log;
  std::vector<VertexId> survivor_slots;
};

/// Decimates one level. `values` must have one entry per vertex.
DecimateResult decimate(const TriMesh& mesh, const Field& values,
                        const DecimateOptions& options);

/// Applies a recorded collapse sequence to another field sampled on the same
/// input mesh: each (i, j) averages slot j into slot i (NewData), and the
/// survivor gather produces the decimated field. O(collapses + output).
Field replay_decimation(const DecimateResult& recipe, const Field& values);

}  // namespace canopus::mesh
