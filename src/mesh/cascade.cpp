#include "mesh/cascade.hpp"

#include "util/assert.hpp"

namespace canopus::mesh {

Cascade build_cascade(const TriMesh& mesh, const Field& values,
                      const CascadeOptions& options,
                      std::vector<DecimateResult>* pass_stats) {
  CANOPUS_CHECK(options.levels >= 1, "cascade needs at least one level");
  CANOPUS_CHECK(values.size() == mesh.vertex_count(),
                "field size does not match vertex count");
  Cascade c;
  c.levels.reserve(options.levels);
  c.levels.push_back(LevelData{mesh, values});
  DecimateOptions step = options.decimate;
  step.ratio = options.step;
  for (std::size_t l = 1; l < options.levels; ++l) {
    const auto& prev = c.levels.back();
    DecimateResult r = decimate(prev.mesh, prev.values, step);
    CANOPUS_CHECK(r.mesh.vertex_count() >= 3,
                  "decimation exhausted the mesh; reduce levels or step");
    c.levels.push_back(LevelData{std::move(r.mesh), std::move(r.values)});
    if (pass_stats) {
      // Keep the meshes out of the stats copy to avoid duplicating them; the
      // collapse log and survivor slots travel along for replay_decimation.
      DecimateResult stats;
      stats.achieved_ratio = r.achieved_ratio;
      stats.collapses = r.collapses;
      stats.rejected = r.rejected;
      stats.collapse_log = std::move(r.collapse_log);
      stats.survivor_slots = std::move(r.survivor_slots);
      pass_stats->push_back(std::move(stats));
    }
  }
  return c;
}

}  // namespace canopus::mesh
