#pragma once
// 2-D geometric primitives for the unstructured-triangular-mesh data model.
//
// Canopus evaluates on 2-D planes of simulation data (XGC1 dpot planes,
// GenASiS slices, CFD surfaces), so the mesh substrate is planar; the field
// values living on the mesh are the third dimension.

#include <array>
#include <cmath>

namespace canopus::mesh {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  Vec2 operator/(double s) const { return {x / s, y / s}; }
  Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  bool operator==(const Vec2&) const = default;

  double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; >0 means `o` is CCW from *this.
  double cross(Vec2 o) const { return x * o.y - y * o.x; }
  double norm2() const { return x * x + y * y; }
  double norm() const { return std::sqrt(norm2()); }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Twice the signed area of triangle (a, b, c); positive when CCW.
inline double signed_area2(Vec2 a, Vec2 b, Vec2 c) {
  return (b - a).cross(c - a);
}

inline double triangle_area(Vec2 a, Vec2 b, Vec2 c) {
  return std::abs(signed_area2(a, b, c)) * 0.5;
}

/// Barycentric coordinates (wa, wb, wc) of p with respect to triangle
/// (a, b, c); they sum to 1. Degenerate triangles yield (1, 0, 0).
inline std::array<double, 3> barycentric(Vec2 p, Vec2 a, Vec2 b, Vec2 c) {
  const double denom = signed_area2(a, b, c);
  if (denom == 0.0) return {1.0, 0.0, 0.0};
  const double wa = signed_area2(p, b, c) / denom;
  const double wb = signed_area2(a, p, c) / denom;
  const double wc = 1.0 - wa - wb;
  return {wa, wb, wc};
}

/// True if p lies inside or on the boundary of triangle (a, b, c), with an
/// epsilon slack to absorb floating-point noise at shared edges.
inline bool point_in_triangle(Vec2 p, Vec2 a, Vec2 b, Vec2 c, double eps = 1e-12) {
  const auto w = barycentric(p, a, b, c);
  return w[0] >= -eps && w[1] >= -eps && w[2] >= -eps;
}

/// Axis-aligned bounding box.
struct Aabb {
  Vec2 lo{0.0, 0.0};
  Vec2 hi{0.0, 0.0};

  void expand(Vec2 p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  double width() const { return hi.x - lo.x; }
  double height() const { return hi.y - lo.y; }
};

}  // namespace canopus::mesh
