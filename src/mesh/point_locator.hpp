#pragma once
// Uniform-grid point location over a triangular mesh.
//
// Delta calculation (Algorithm 2) and restoration (Algorithm 3) both need,
// for every fine-level vertex, the coarse-level triangle that contains it.
// Canopus stores that mapping in metadata during refactoring; this locator
// is what builds it. The brute-force O(V·T) scan the paper warns about is
// replaced by bucketing triangle bounding boxes into a uniform grid.

#include <cstddef>
#include <optional>
#include <vector>

#include "mesh/tri_mesh.hpp"

namespace canopus::mesh {

/// Result of a point query: containing triangle plus barycentric weights.
struct Location {
  TriangleId triangle = static_cast<TriangleId>(-1);
  std::array<double, 3> weights{0.0, 0.0, 0.0};
  /// False when the point was outside every triangle and the nearest triangle
  /// with clamped weights was used instead (boundary shrinkage after edge
  /// collapses makes this unavoidable near the rim).
  bool exact = true;
};

class PointLocator {
 public:
  /// Builds the grid index; `cells_per_triangle` tunes grid resolution.
  explicit PointLocator(const TriMesh& mesh, double cells_per_triangle = 1.0);

  /// Locates p; falls back to the nearest triangle when p is outside the mesh.
  Location locate(Vec2 p) const;

  /// Exact containment only: returns nullopt for points outside every
  /// triangle instead of the (linear-cost) nearest-triangle fallback. Use for
  /// dense queries like rasterization where misses are expected and cheap.
  std::optional<Location> try_locate(Vec2 p) const;

  /// Maps every vertex of `fine` onto this locator's (coarse) mesh.
  std::vector<Location> locate_all(const TriMesh& fine) const;

  std::size_t grid_nx() const { return nx_; }
  std::size_t grid_ny() const { return ny_; }

 private:
  std::size_t cell_of(Vec2 p) const;
  Location nearest_fallback(Vec2 p) const;

  const TriMesh& mesh_;
  Aabb bounds_;
  std::size_t nx_ = 1, ny_ = 1;
  double inv_dx_ = 0.0, inv_dy_ = 0.0;
  std::vector<std::vector<TriangleId>> cells_;
};

}  // namespace canopus::mesh
