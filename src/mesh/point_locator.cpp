#include "mesh/point_locator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace canopus::mesh {

PointLocator::PointLocator(const TriMesh& mesh, double cells_per_triangle)
    : mesh_(mesh) {
  CANOPUS_CHECK(mesh.triangle_count() > 0, "cannot index an empty mesh");
  bounds_ = mesh.bounds();
  const double target =
      std::max(1.0, cells_per_triangle * static_cast<double>(mesh.triangle_count()));
  const double aspect = std::max(bounds_.width(), 1e-300) /
                        std::max(bounds_.height(), 1e-300);
  ny_ = std::max<std::size_t>(1, static_cast<std::size_t>(std::sqrt(target / aspect)));
  nx_ = std::max<std::size_t>(1, static_cast<std::size_t>(target / static_cast<double>(ny_)));
  inv_dx_ = bounds_.width() > 0.0 ? static_cast<double>(nx_) / bounds_.width() : 0.0;
  inv_dy_ = bounds_.height() > 0.0 ? static_cast<double>(ny_) / bounds_.height() : 0.0;
  cells_.assign(nx_ * ny_, {});

  const auto& verts = mesh.vertices();
  for (TriangleId t = 0; t < mesh.triangle_count(); ++t) {
    const auto& tri = mesh.triangle(t);
    Aabb box;
    box.lo = box.hi = verts[tri.v[0]];
    box.expand(verts[tri.v[1]]);
    box.expand(verts[tri.v[2]]);
    const auto c0 = cell_of(box.lo);
    const auto c1 = cell_of(box.hi);
    const std::size_t x0 = c0 % nx_, y0 = c0 / nx_;
    const std::size_t x1 = c1 % nx_, y1 = c1 / nx_;
    for (std::size_t y = y0; y <= y1; ++y) {
      for (std::size_t x = x0; x <= x1; ++x) {
        cells_[y * nx_ + x].push_back(t);
      }
    }
  }
}

std::size_t PointLocator::cell_of(Vec2 p) const {
  auto clampi = [](double v, std::size_t n) {
    if (v < 0.0) return std::size_t{0};
    const auto i = static_cast<std::size_t>(v);
    return std::min(i, n - 1);
  };
  const std::size_t x = clampi((p.x - bounds_.lo.x) * inv_dx_, nx_);
  const std::size_t y = clampi((p.y - bounds_.lo.y) * inv_dy_, ny_);
  return y * nx_ + x;
}

std::optional<Location> PointLocator::try_locate(Vec2 p) const {
  const auto& verts = mesh_.vertices();
  for (TriangleId t : cells_[cell_of(p)]) {
    const auto& tri = mesh_.triangle(t);
    const auto w = barycentric(p, verts[tri.v[0]], verts[tri.v[1]], verts[tri.v[2]]);
    constexpr double eps = 1e-10;
    if (w[0] >= -eps && w[1] >= -eps && w[2] >= -eps) {
      return Location{t, w, true};
    }
  }
  return std::nullopt;
}

Location PointLocator::locate(Vec2 p) const {
  if (const auto hit = try_locate(p)) return *hit;
  return nearest_fallback(p);
}

Location PointLocator::nearest_fallback(Vec2 p) const {
  // Scans all triangles for the one whose clamped barycentric projection is
  // nearest. Linear, but only hit for rim points outside the coarse mesh.
  const auto& verts = mesh_.vertices();
  Location best;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (TriangleId t = 0; t < mesh_.triangle_count(); ++t) {
    const auto& tri = mesh_.triangle(t);
    const Vec2 a = verts[tri.v[0]], b = verts[tri.v[1]], c = verts[tri.v[2]];
    auto w = barycentric(p, a, b, c);
    // Clamp negative weights to zero and renormalize: projects p into the
    // triangle along barycentric axes (adequate for near-boundary points).
    for (double& wi : w) wi = std::max(0.0, wi);
    const double sum = w[0] + w[1] + w[2];
    if (sum <= 0.0) continue;
    for (double& wi : w) wi /= sum;
    const Vec2 proj = a * w[0] + b * w[1] + c * w[2];
    const double d2 = (proj - p).norm2();
    if (d2 < best_d2) {
      best_d2 = d2;
      best = Location{t, w, false};
    }
  }
  CANOPUS_CHECK(best.triangle != static_cast<TriangleId>(-1),
                "point location failed: mesh fully degenerate");
  return best;
}

std::vector<Location> PointLocator::locate_all(const TriMesh& fine) const {
  std::vector<Location> out(fine.vertex_count());
  for (VertexId v = 0; v < fine.vertex_count(); ++v) {
    out[v] = locate(fine.vertex(v));
  }
  return out;
}

}  // namespace canopus::mesh
