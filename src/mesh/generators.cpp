#include "mesh/generators.hpp"

#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace canopus::mesh {

namespace {

/// Ensures every triangle is CCW by swapping two vertices when needed.
void orient_ccw(const std::vector<Vec2>& vertices, std::vector<Triangle>& tris) {
  for (auto& t : tris) {
    if (signed_area2(vertices[t.v[0]], vertices[t.v[1]], vertices[t.v[2]]) < 0.0) {
      std::swap(t.v[1], t.v[2]);
    }
  }
}

}  // namespace

TriMesh make_rect_mesh(std::size_t nx, std::size_t ny, double w, double h,
                       double jitter, std::uint64_t seed) {
  CANOPUS_ASSERT(nx >= 1 && ny >= 1);
  util::Rng rng(seed);
  const std::size_t vx = nx + 1, vy = ny + 1;
  std::vector<Vec2> vertices;
  vertices.reserve(vx * vy);
  const double dx = w / static_cast<double>(nx);
  const double dy = h / static_cast<double>(ny);
  for (std::size_t j = 0; j < vy; ++j) {
    for (std::size_t i = 0; i < vx; ++i) {
      Vec2 p{static_cast<double>(i) * dx, static_cast<double>(j) * dy};
      const bool interior = i > 0 && i < nx && j > 0 && j < ny;
      if (interior && jitter > 0.0) {
        p.x += rng.uniform(-jitter, jitter) * dx;
        p.y += rng.uniform(-jitter, jitter) * dy;
      }
      vertices.push_back(p);
    }
  }
  std::vector<Triangle> tris;
  tris.reserve(nx * ny * 2);
  auto vid = [vx](std::size_t i, std::size_t j) {
    return static_cast<VertexId>(j * vx + i);
  };
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const VertexId a = vid(i, j), b = vid(i + 1, j);
      const VertexId c = vid(i + 1, j + 1), d = vid(i, j + 1);
      // Alternate the quad diagonal so the triangulation has no global bias.
      if ((i + j) % 2 == 0) {
        tris.push_back({{a, b, c}});
        tris.push_back({{a, c, d}});
      } else {
        tris.push_back({{a, b, d}});
        tris.push_back({{b, c, d}});
      }
    }
  }
  orient_ccw(vertices, tris);
  return TriMesh(std::move(vertices), std::move(tris));
}

TriMesh make_annulus_mesh(std::size_t rings, std::size_t sectors,
                          double r_inner, double r_outer,
                          double jitter, std::uint64_t seed) {
  CANOPUS_ASSERT(rings >= 1 && sectors >= 3);
  CANOPUS_ASSERT(r_inner > 0.0 && r_outer > r_inner);
  util::Rng rng(seed);
  std::vector<Vec2> vertices;
  vertices.reserve((rings + 1) * sectors);
  const double dr = (r_outer - r_inner) / static_cast<double>(rings);
  const double dtheta = 2.0 * std::numbers::pi / static_cast<double>(sectors);
  for (std::size_t r = 0; r <= rings; ++r) {
    for (std::size_t s = 0; s < sectors; ++s) {
      double radius = r_inner + static_cast<double>(r) * dr;
      double theta = static_cast<double>(s) * dtheta;
      const bool interior = r > 0 && r < rings;
      if (interior && jitter > 0.0) {
        radius += rng.uniform(-jitter, jitter) * dr;
        theta += rng.uniform(-jitter, jitter) * dtheta;
      }
      vertices.push_back({radius * std::cos(theta), radius * std::sin(theta)});
    }
  }
  std::vector<Triangle> tris;
  tris.reserve(rings * sectors * 2);
  auto vid = [sectors](std::size_t r, std::size_t s) {
    return static_cast<VertexId>(r * sectors + s % sectors);
  };
  for (std::size_t r = 0; r < rings; ++r) {
    for (std::size_t s = 0; s < sectors; ++s) {
      const VertexId a = vid(r, s), b = vid(r, s + 1);
      const VertexId c = vid(r + 1, s + 1), d = vid(r + 1, s);
      if ((r + s) % 2 == 0) {
        tris.push_back({{a, b, c}});
        tris.push_back({{a, c, d}});
      } else {
        tris.push_back({{a, b, d}});
        tris.push_back({{b, c, d}});
      }
    }
  }
  orient_ccw(vertices, tris);
  return TriMesh(std::move(vertices), std::move(tris));
}

TriMesh make_disk_mesh(std::size_t rings, std::size_t sectors, double radius,
                       double jitter, std::uint64_t seed) {
  CANOPUS_ASSERT(rings >= 1 && sectors >= 3 && radius > 0.0);
  util::Rng rng(seed);
  std::vector<Vec2> vertices;
  vertices.push_back({0.0, 0.0});  // center
  const double dr = radius / static_cast<double>(rings);
  const double dtheta = 2.0 * std::numbers::pi / static_cast<double>(sectors);
  for (std::size_t r = 1; r <= rings; ++r) {
    for (std::size_t s = 0; s < sectors; ++s) {
      double rr = static_cast<double>(r) * dr;
      double theta = static_cast<double>(s) * dtheta;
      const bool interior = r < rings;
      if (interior && jitter > 0.0) {
        rr += rng.uniform(-jitter, jitter) * dr;
        theta += rng.uniform(-jitter, jitter) * dtheta;
      }
      vertices.push_back({rr * std::cos(theta), rr * std::sin(theta)});
    }
  }
  std::vector<Triangle> tris;
  auto vid = [sectors](std::size_t r, std::size_t s) {
    // ring r >= 1; rings are laid out after the center vertex.
    return static_cast<VertexId>(1 + (r - 1) * sectors + s % sectors);
  };
  // Center fan.
  for (std::size_t s = 0; s < sectors; ++s) {
    tris.push_back({{0, vid(1, s), vid(1, s + 1)}});
  }
  // Annular rings.
  for (std::size_t r = 1; r < rings; ++r) {
    for (std::size_t s = 0; s < sectors; ++s) {
      const VertexId a = vid(r, s), b = vid(r, s + 1);
      const VertexId c = vid(r + 1, s + 1), d = vid(r + 1, s);
      if ((r + s) % 2 == 0) {
        tris.push_back({{a, b, c}});
        tris.push_back({{a, c, d}});
      } else {
        tris.push_back({{a, b, d}});
        tris.push_back({{b, c, d}});
      }
    }
  }
  orient_ccw(vertices, tris);
  return TriMesh(std::move(vertices), std::move(tris));
}

TriMesh make_airfoil_mesh(std::size_t nx, std::size_t ny, double w, double h,
                          double cx, double cy, double chord, double thickness,
                          double jitter, std::uint64_t seed) {
  TriMesh grid = make_rect_mesh(nx, ny, w, h, jitter, seed);
  auto inside_body = [&](Vec2 p) {
    const double u = (p.x - cx) / (chord * 0.5);
    const double v = (p.y - cy) / (thickness * 0.5);
    return u * u + v * v < 1.0;
  };
  // Remap vertices outside the body to compact ids; drop triangles touching
  // any removed vertex.
  std::vector<VertexId> remap(grid.vertex_count(), kInvalidVertex);
  std::vector<Vec2> vertices;
  vertices.reserve(grid.vertex_count());
  for (VertexId v = 0; v < grid.vertex_count(); ++v) {
    if (!inside_body(grid.vertex(v))) {
      remap[v] = static_cast<VertexId>(vertices.size());
      vertices.push_back(grid.vertex(v));
    }
  }
  std::vector<Triangle> tris;
  for (const auto& t : grid.triangles()) {
    const VertexId a = remap[t.v[0]], b = remap[t.v[1]], c = remap[t.v[2]];
    if (a != kInvalidVertex && b != kInvalidVertex && c != kInvalidVertex) {
      tris.push_back({{a, b, c}});
    }
  }
  CANOPUS_CHECK(!tris.empty(), "airfoil body swallowed the whole domain");
  // Drop vertices that lost all their triangles (ring just around the body).
  std::vector<VertexId> remap2(vertices.size(), kInvalidVertex);
  for (const auto& t : tris) {
    for (VertexId v : t.v) remap2[v] = 0;
  }
  std::vector<Vec2> used;
  used.reserve(vertices.size());
  for (VertexId v = 0; v < vertices.size(); ++v) {
    if (remap2[v] != kInvalidVertex) {
      remap2[v] = static_cast<VertexId>(used.size());
      used.push_back(vertices[v]);
    }
  }
  for (auto& t : tris) {
    for (auto& v : t.v) v = remap2[v];
  }
  return TriMesh(std::move(used), std::move(tris));
}

TriMesh shuffle_vertices(const TriMesh& mesh, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<VertexId> perm(mesh.vertex_count());
  for (VertexId v = 0; v < perm.size(); ++v) perm[v] = v;
  // Fisher-Yates with the deterministic engine.
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.uniform_index(i)]);
  }
  std::vector<Vec2> vertices(mesh.vertex_count());
  for (VertexId v = 0; v < mesh.vertex_count(); ++v) {
    vertices[perm[v]] = mesh.vertex(v);
  }
  std::vector<Triangle> tris = mesh.triangles();
  for (auto& t : tris) {
    for (auto& v : t.v) v = perm[v];
  }
  return TriMesh(std::move(vertices), std::move(tris));
}

}  // namespace canopus::mesh
