#pragma once
// Procedural triangulations standing in for the paper's application meshes.
//
// XGC1 planes are annular cross-sections of a tokamak; GenASiS slices are
// disks around a collapsed core; the CFD kernel is a body embedded in a
// rectangular flow domain. Each generator produces a valid, consistently
// CCW-oriented TriMesh; optional jitter breaks the structured regularity so
// the meshes exercise truly unstructured code paths.

#include <cstdint>

#include "mesh/tri_mesh.hpp"
#include "util/rng.hpp"

namespace canopus::mesh {

/// Rectangular domain [0,w]x[0,h] triangulated as nx*ny quads split into two
/// triangles each. `jitter` perturbs interior vertices by up to that fraction
/// of a cell (0 keeps the structured grid).
TriMesh make_rect_mesh(std::size_t nx, std::size_t ny, double w, double h,
                       double jitter = 0.0, std::uint64_t seed = 1);

/// Annulus centered at the origin with inner/outer radii, `rings` radial
/// layers and `sectors` angular divisions; models a tokamak poloidal plane.
TriMesh make_annulus_mesh(std::size_t rings, std::size_t sectors,
                          double r_inner, double r_outer,
                          double jitter = 0.0, std::uint64_t seed = 1);

/// Disk of the given radius: a center fan plus annular rings.
TriMesh make_disk_mesh(std::size_t rings, std::size_t sectors, double radius,
                       double jitter = 0.0, std::uint64_t seed = 1);

/// Rectangular flow domain with an elliptic body (chord x thickness, centered
/// at cx, cy) removed — vertices inside the ellipse are dropped and triangles
/// touching them discarded, leaving a jet/airfoil-like cutout.
TriMesh make_airfoil_mesh(std::size_t nx, std::size_t ny, double w, double h,
                          double cx, double cy, double chord, double thickness,
                          double jitter = 0.0, std::uint64_t seed = 1);

/// Renumbers vertices with a deterministic random permutation (triangles are
/// remapped accordingly). The builders above emit raster-ordered vertex ids,
/// which real unstructured-mesh generators do not: production meshes number
/// vertices in an order with little spatial coherence, which is precisely why
/// order-agnostic 1-D compressors struggle on mesh data and why Canopus'
/// mesh-aware prediction pays off (Section II-D). Synthetic datasets apply
/// this to model realistic numbering.
TriMesh shuffle_vertices(const TriMesh& mesh, std::uint64_t seed);

}  // namespace canopus::mesh
