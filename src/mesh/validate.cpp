#include "mesh/validate.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace canopus::mesh {

ValidationReport validate(const TriMesh& mesh) {
  ValidationReport r;
  r.vertex_count = mesh.vertex_count();
  r.triangle_count = mesh.triangle_count();

  const auto& verts = mesh.vertices();
  std::set<std::array<VertexId, 3>> seen;
  std::map<Edge, int> edge_use;
  std::vector<bool> referenced(mesh.vertex_count(), false);

  for (TriangleId t = 0; t < mesh.triangle_count(); ++t) {
    const auto& tri = mesh.triangle(t);
    for (VertexId v : tri.v) {
      if (v >= mesh.vertex_count()) {
        r.fail("triangle " + std::to_string(t) + " references out-of-range vertex");
        return r;
      }
      referenced[v] = true;
    }
    if (tri.v[0] == tri.v[1] || tri.v[1] == tri.v[2] || tri.v[0] == tri.v[2]) {
      r.fail("triangle " + std::to_string(t) + " repeats a vertex");
      continue;
    }
    auto key = tri.v;
    std::sort(key.begin(), key.end());
    if (!seen.insert(key).second) {
      r.fail("duplicate triangle " + std::to_string(t));
    }
    const double area2 = signed_area2(verts[tri.v[0]], verts[tri.v[1]], verts[tri.v[2]]);
    if (area2 == 0.0) {
      r.fail("zero-area triangle " + std::to_string(t));
    } else if (area2 < 0.0) {
      r.fail("clockwise triangle " + std::to_string(t));
    }
    ++edge_use[Edge(tri.v[0], tri.v[1])];
    ++edge_use[Edge(tri.v[1], tri.v[2])];
    ++edge_use[Edge(tri.v[2], tri.v[0])];
  }

  r.edge_count = edge_use.size();
  for (const auto& [e, uses] : edge_use) {
    if (uses > 2) {
      r.fail("non-manifold edge (" + std::to_string(e.a) + "," +
             std::to_string(e.b) + ") used by " + std::to_string(uses) +
             " triangles");
    }
    if (uses == 1) ++r.boundary_edge_count;
  }

  for (VertexId v = 0; v < mesh.vertex_count(); ++v) {
    if (!referenced[v]) {
      r.fail("isolated vertex " + std::to_string(v));
    }
  }

  r.euler_characteristic = static_cast<long>(r.vertex_count) -
                           static_cast<long>(r.edge_count) +
                           static_cast<long>(r.triangle_count);
  return r;
}

}  // namespace canopus::mesh
