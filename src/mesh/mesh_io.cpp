#include "mesh/mesh_io.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace canopus::mesh {

void save_off(const TriMesh& mesh, const std::string& path, const Field* values) {
  if (values) {
    CANOPUS_CHECK(values->size() == mesh.vertex_count(),
                  "field size does not match vertex count");
  }
  std::ofstream f(path);
  CANOPUS_CHECK(f.good(), "cannot open for writing: " + path);
  f << "OFF\n"
    << mesh.vertex_count() << ' ' << mesh.triangle_count() << " 0\n";
  f.precision(17);
  for (VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const Vec2 p = mesh.vertex(v);
    f << p.x << ' ' << p.y << ' ' << (values ? (*values)[v] : 0.0) << '\n';
  }
  for (const auto& t : mesh.triangles()) {
    f << "3 " << t.v[0] << ' ' << t.v[1] << ' ' << t.v[2] << '\n';
  }
  CANOPUS_CHECK(f.good(), "write failed: " + path);
}

TriMesh load_off(const std::string& path) {
  std::ifstream f(path);
  CANOPUS_CHECK(f.good(), "cannot open for reading: " + path);
  std::string magic;
  f >> magic;
  CANOPUS_CHECK(magic == "OFF", "not an OFF file: " + path);
  std::size_t nv = 0, nf = 0, ne = 0;
  f >> nv >> nf >> ne;
  CANOPUS_CHECK(f.good(), "corrupt OFF header: " + path);
  std::vector<Vec2> vertices;
  vertices.reserve(nv);
  for (std::size_t i = 0; i < nv; ++i) {
    double x = 0, y = 0, z = 0;
    f >> x >> y >> z;
    vertices.push_back({x, y});
  }
  std::vector<Triangle> tris;
  tris.reserve(nf);
  for (std::size_t i = 0; i < nf; ++i) {
    std::size_t arity = 0;
    f >> arity;
    CANOPUS_CHECK(arity == 3, "non-triangular face in OFF file: " + path);
    Triangle t;
    f >> t.v[0] >> t.v[1] >> t.v[2];
    tris.push_back(t);
  }
  CANOPUS_CHECK(!f.fail(), "corrupt OFF body: " + path);
  return TriMesh(std::move(vertices), std::move(tris));
}

void save_pgm(const std::vector<std::uint8_t>& pixels, std::size_t width,
              std::size_t height, const std::string& path) {
  CANOPUS_CHECK(pixels.size() == width * height, "pixel buffer size mismatch");
  std::ofstream f(path, std::ios::binary);
  CANOPUS_CHECK(f.good(), "cannot open for writing: " + path);
  f << "P5\n" << width << ' ' << height << "\n255\n";
  f.write(reinterpret_cast<const char*>(pixels.data()),
          static_cast<std::streamsize>(pixels.size()));
  CANOPUS_CHECK(f.good(), "write failed: " + path);
}

}  // namespace canopus::mesh
