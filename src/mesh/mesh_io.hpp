#pragma once
// Plain-text mesh exchange (OFF format) so refactored levels can be inspected
// with standard mesh viewers, plus a PGM raster dump used by the figure
// benches to emit the paper's visual panels (Figs. 4 and 7).

#include <string>
#include <vector>

#include "mesh/tri_mesh.hpp"

namespace canopus::mesh {

/// Writes the mesh in OFF format (z = 0, or z = field value when provided for
/// a height-field view).
void save_off(const TriMesh& mesh, const std::string& path,
              const Field* values = nullptr);

/// Loads an OFF file; only triangular faces are accepted.
TriMesh load_off(const std::string& path);

/// Writes an 8-bit grayscale PGM image.
void save_pgm(const std::vector<std::uint8_t>& pixels, std::size_t width,
              std::size_t height, const std::string& path);

}  // namespace canopus::mesh
