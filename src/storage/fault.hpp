#pragma once
// Deterministic fault injection for the storage hierarchy.
//
// Production deep hierarchies put deltas on campaign/archive tiers that time
// out, drop requests, and occasionally return corrupt bytes. The FaultInjector
// models those failure modes per tier with independent probabilities, driven
// by one seeded util::Rng so that every run — and therefore every test and
// bench — is reproducible from the seed. Tiers consult the injector on each
// read/write; the hierarchy's retry/replica machinery and the progressive
// reader's graceful degradation are exercised against it.
//
// The decision stream is fixed-shape: an active profile always consumes the
// same number of RNG draws per operation regardless of the outcome, so the
// sequence of decisions depends only on (seed, sequence of operations).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace canopus::storage {

/// Thrown when a tier operation fails outright (injected read/write error,
/// or — with real backends — an unreadable file). Distinct from
/// IntegrityError, which means bytes arrived but were corrupt.
class TierIoError : public Error {
 public:
  explicit TierIoError(const std::string& what) : Error(what) {}
};

/// Per-tier failure probabilities. All in [0, 1]; zero-initialized profile
/// injects nothing.
struct FaultProfile {
  double read_error = 0.0;     // read fails outright (TierIoError)
  double write_error = 0.0;    // write fails outright (TierIoError)
  double corrupt = 0.0;        // read returns bit-flipped bytes (CRC catches)
  double latency_spike = 0.0;  // read/write charged extra simulated seconds
  double spike_seconds = 0.0;  // magnitude of one latency spike

  bool active() const {
    return read_error > 0.0 || write_error > 0.0 || corrupt > 0.0 ||
           latency_spike > 0.0;
  }
};

/// Outcome of consulting the injector for one tier operation.
struct FaultDecision {
  bool fail = false;
  bool corrupt = false;           // reads only
  double extra_seconds = 0.0;     // latency spike to add to the sim clock
  std::uint64_t corrupt_bit = 0;  // caller takes it modulo the blob bit count
};

/// Running totals of everything injected so far.
struct FaultCounters {
  std::uint64_t read_errors = 0;
  std::uint64_t write_errors = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t latency_spikes = 0;

  std::uint64_t total_faults() const {
    return read_errors + write_errors + corruptions;
  }
};

/// Seedable, deterministic fault source shared by the tiers of one hierarchy.
/// Not thread-safe — same single-writer discipline as StorageHierarchy.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0) : rng_(seed) {}

  /// Installs the failure profile for tier `tier` (index in the hierarchy,
  /// fastest first). Tiers without a profile never fault.
  void set_profile(std::size_t tier, const FaultProfile& profile);

  /// Profile of a tier (zero profile when none was set).
  const FaultProfile& profile(std::size_t tier) const;

  FaultDecision on_read(std::size_t tier);
  FaultDecision on_write(std::size_t tier);

  const FaultCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = FaultCounters{}; }

 private:
  util::Rng rng_;
  std::vector<FaultProfile> profiles_;
  FaultCounters counters_;
};

}  // namespace canopus::storage
