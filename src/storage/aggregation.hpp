#pragma once
// Write-aggregation cost model, after ADIOS' MPI_AGGREGATE transport
// (Fig. 2 of the paper lists it as one of the transports Canopus rides on).
//
// P writer processes funnel their shards through A aggregator processes,
// which issue large sequential writes to T storage targets. Two stages:
//
//   gather: every aggregator receives total/A bytes over the interconnect
//           (writers send concurrently, aggregator inbound link is the
//           bottleneck);
//   flush:  min(A, T) concurrent streams share the tier; aggregators beyond
//           the target count contend instead of adding bandwidth.
//
// The sweet spot the model reproduces: too few aggregators waste target
// parallelism, too many fragment writes and add gather latency — the classic
// aggregator-tuning curve on Lustre.

#include <cstddef>

#include "storage/tier.hpp"

namespace canopus::storage {

struct AggregationModel {
  std::size_t writers = 1;
  std::size_t aggregators = 1;
  std::size_t storage_targets = 1;
  double interconnect_bandwidth = 5e9;  // bytes/s per aggregator inbound link
  double interconnect_latency = 5e-6;   // per message
  /// Fractional throughput loss per aggregator contending beyond the target
  /// count (lock/stripe contention).
  double contention_penalty = 0.03;
};

/// Seconds to write `total_bytes` (spread evenly over the writers) onto a
/// tier with this aggregation layout.
double aggregate_write_seconds(const AggregationModel& model,
                               const TierSpec& tier, std::size_t total_bytes);

/// Aggregator count in [1, writers] minimizing the model's write time.
std::size_t best_aggregator_count(AggregationModel model, const TierSpec& tier,
                                  std::size_t total_bytes);

}  // namespace canopus::storage
