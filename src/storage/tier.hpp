#pragma once
// A single storage tier: capacity + performance envelope + backing store.
//
// The paper emulates a two-tier hierarchy (DRAM tmpfs + Lustre) on Titan; we
// generalize to arbitrary tier stacks (HBM/NVRAM/SSD/burst-buffer/PFS/campaign)
// with a deterministic linear cost model (latency + bytes/bandwidth) so that
// bench output is reproducible on any machine while preserving the relative
// speed gaps that drive the paper's end-to-end results. Objects are byte
// blobs addressed by name; backends either hold them in memory or spill them
// to real files (useful to exercise the POSIX path).

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/byte_buffer.hpp"

namespace canopus::storage {

class FaultInjector;

enum class Backend : std::uint8_t {
  kMemory,  // std::map of blobs; cost model only
  kFile,    // one file per object under root_dir; cost model + real I/O
};

struct TierSpec {
  std::string name;
  std::size_t capacity_bytes = 0;
  double read_bandwidth = 1e9;   // bytes / second
  double write_bandwidth = 1e9;  // bytes / second
  double read_latency = 0.0;     // seconds / operation
  double write_latency = 0.0;    // seconds / operation
  Backend backend = Backend::kMemory;
  std::string root_dir;  // required for kFile
};

/// Simulated + measured cost of one I/O operation. The robustness fields are
/// filled by StorageHierarchy's retry/replica machinery; a plain tier-level
/// operation leaves them at their defaults.
struct IoResult {
  double sim_seconds = 0.0;   // cost-model time (deterministic)
  double wall_seconds = 0.0;  // actual elapsed time (backend-dependent)
  std::size_t bytes = 0;
  std::uint32_t retries = 0;      // failed attempts that were retried
  std::uint32_t corruptions = 0;  // CRC failures among those attempts
  bool from_replica = false;      // satisfied by a cross-tier replica copy
  bool from_cache = false;        // satisfied by the shared block cache
};

class StorageTier {
 public:
  explicit StorageTier(TierSpec spec);

  const TierSpec& spec() const { return spec_; }
  std::size_t used_bytes() const { return used_; }
  std::size_t free_bytes() const {
    return spec_.capacity_bytes > used_ ? spec_.capacity_bytes - used_ : 0;
  }
  bool fits(std::size_t nbytes) const { return nbytes <= free_bytes(); }

  /// Routes this tier's I/O through a fault injector (not owned; must outlive
  /// the tier). `tier_index` selects which FaultProfile applies. Pass nullptr
  /// to detach.
  void set_fault_injector(FaultInjector* injector, std::size_t tier_index);

  /// Stores (or replaces) an object; throws Error when capacity is exceeded
  /// and TierIoError on an injected write failure. The payload is wrapped in
  /// an integrity frame (storage/blob_frame.hpp) before it hits the backend;
  /// capacity, sizes, and the cost model all stay in payload bytes.
  IoResult write(const std::string& key, util::BytesView data);

  /// Loads an object; throws Error when missing, TierIoError on an injected
  /// read failure, and IntegrityError when the stored frame fails its CRC
  /// (injected bit flips or real on-disk corruption).
  IoResult read(const std::string& key, util::Bytes& out) const;

  bool contains(const std::string& key) const;
  std::size_t object_size(const std::string& key) const;

  /// Names of every object on this tier (sorted). Used by the hierarchy's
  /// drain path when a tier is detached at runtime.
  std::vector<std::string> keys() const;

  /// Removes an object (no-op when absent); frees its capacity.
  void erase(const std::string& key);

  /// Cost model, exposed for planning: latency + bytes / bandwidth.
  double write_cost(std::size_t nbytes) const {
    return spec_.write_latency +
           static_cast<double>(nbytes) / spec_.write_bandwidth;
  }
  double read_cost(std::size_t nbytes) const {
    return spec_.read_latency +
           static_cast<double>(nbytes) / spec_.read_bandwidth;
  }

  /// Planning cost of a read issued as part of an aggregated batch submission
  /// to this tier: ops after the first share the batch's round trip, so only
  /// the first pays the per-operation latency and the rest pay transfer cost
  /// alone. StorageHierarchy::read_batch applies the same amortization to
  /// executed reads, so plans built from this stay consistent with the
  /// simulated clock.
  double batched_read_cost(std::size_t nbytes, bool first_in_batch) const {
    return (first_in_batch ? spec_.read_latency : 0.0) +
           static_cast<double>(nbytes) / spec_.read_bandwidth;
  }

 private:
  std::string path_for(const std::string& key) const;

  TierSpec spec_;
  std::size_t used_ = 0;
  std::map<std::string, util::Bytes> memory_;         // kMemory framed blobs
  std::map<std::string, std::size_t> payload_sizes_;  // logical object sizes
  FaultInjector* faults_ = nullptr;                   // not owned; may be null
  std::size_t fault_index_ = 0;
};

/// Factory presets modeled on published system characteristics; capacities
/// are scaled-down defaults that benches override per scenario.
TierSpec tmpfs_spec(std::size_t capacity_bytes);
TierSpec nvram_spec(std::size_t capacity_bytes);
TierSpec ssd_spec(std::size_t capacity_bytes);
TierSpec burst_buffer_spec(std::size_t capacity_bytes);
TierSpec lustre_spec(std::size_t capacity_bytes);
TierSpec campaign_spec(std::size_t capacity_bytes);

}  // namespace canopus::storage
