#include "storage/blob_frame.hpp"

#include <cstring>

#include "util/crc32.hpp"

namespace canopus::storage {

util::Bytes frame_blob(util::BytesView payload) {
  util::Bytes frame(framed_size(payload.size()));
  const std::uint32_t magic = kFrameMagic;
  const std::uint64_t length = payload.size();
  const std::uint32_t crc = util::Crc32::compute(payload);
  std::memcpy(frame.data(), &magic, sizeof magic);
  std::memcpy(frame.data() + 4, &length, sizeof length);
  std::memcpy(frame.data() + 12, &crc, sizeof crc);
  std::memcpy(frame.data() + kFrameOverhead, payload.data(), payload.size());
  return frame;
}

util::Bytes unframe_blob(util::BytesView frame) {
  if (frame.size() < kFrameOverhead) {
    throw IntegrityError("blob frame truncated: " +
                         std::to_string(frame.size()) + " bytes");
  }
  std::uint32_t magic = 0;
  std::uint64_t length = 0;
  std::uint32_t crc = 0;
  std::memcpy(&magic, frame.data(), sizeof magic);
  std::memcpy(&length, frame.data() + 4, sizeof length);
  std::memcpy(&crc, frame.data() + 12, sizeof crc);
  if (magic != kFrameMagic) {
    throw IntegrityError("blob frame magic mismatch");
  }
  if (length != frame.size() - kFrameOverhead) {
    throw IntegrityError("blob frame length corrupt: header says " +
                         std::to_string(length) + ", frame holds " +
                         std::to_string(frame.size() - kFrameOverhead));
  }
  const auto payload = frame.subspan(kFrameOverhead);
  const std::uint32_t actual = util::Crc32::compute(payload);
  if (actual != crc) {
    throw IntegrityError("blob frame checksum mismatch");
  }
  return util::Bytes(payload.begin(), payload.end());
}

}  // namespace canopus::storage
