#pragma once
// Multi-tier storage hierarchy with Canopus' placement policy.
//
// Tiers are ordered fastest-first (the pyramid of Fig. 1). Placement walks
// the stack top-down and puts each object on the fastest tier that still has
// room — a tier without sufficient capacity is bypassed and the next one
// selected, exactly as Section III-D describes. The hierarchy remembers
// which tier holds each object so retrieval is a single lookup.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cache/block_cache.hpp"
#include "storage/fault.hpp"
#include "storage/tier.hpp"

namespace canopus::storage {

/// Thrown when no tier (or no eviction plan) can absorb an object. A typed
/// subclass so the Pipeline facade can report StatusCode::kCapacity without
/// parsing messages.
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& what) : Error(what) {}
};

/// Outcome of one operation of a batched read (read_batch /
/// RemoteStore::remote_read_batch): the payload and I/O accounting on
/// success, or the captured failure — a batch never throws as a whole, each
/// op fails independently exactly as its serial read() would.
struct BatchReadResult {
  util::Bytes bytes;
  IoResult io;
  std::exception_ptr error;  // null on success; bytes empty when set
};

/// Resolver for objects that are not on any local tier — the hook the
/// cluster fabric (src/fabric) plugs in so N node-local hierarchies behave
/// like one aggregate store. StorageHierarchy::read() consults it on a local
/// miss, *outside* the hierarchy lock: the remote owner takes its own lock,
/// and two nodes reading from each other must never hold both at once.
class RemoteStore {
 public:
  virtual ~RemoteStore() = default;

  /// Resolves `key` from whichever peer holds it and returns the I/O result
  /// including the network envelope. Called only after a local miss; throws
  /// TierIoError when no reachable peer has a copy.
  virtual IoResult remote_read(const std::string& key, util::Bytes& out) = 0;

  /// Batched variant used by read_batch() for a run of local misses: resolves
  /// every key, capturing each op's failure in its slot instead of throwing.
  /// The default loops remote_read(); the fabric overrides it to amortize the
  /// per-message network latency across the batch (one aggregated request).
  virtual std::vector<BatchReadResult> remote_read_batch(
      const std::vector<std::string>& keys) {
    std::vector<BatchReadResult> out(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      try {
        out[i].io = remote_read(keys[i], out[i].bytes);
      } catch (...) {
        out[i].error = std::current_exception();
      }
    }
    return out;
  }

  /// Planning estimate of remote_read()'s simulated cost for a `bytes`-sized
  /// object (owner tier cost + network envelope). No side effects: the serve
  /// cost model calls this per block while planning.
  virtual double estimated_read_cost(const std::string& key,
                                     std::size_t bytes) const = 0;

  /// Notification that a read of `key` was served from local storage (one
  /// per successful serve, after the bytes are in hand). Default no-op.
  virtual void note_local_hit(const std::string& key) { (void)key; }

  /// Monotone epoch of the cluster topology behind this resolver (node
  /// attach/detach/rebalance). Planners (serve::CostModel) snapshot it and
  /// rebuild their residency probes when it moves, so a plan never routes
  /// against a retired owner. Standalone resolvers stay at 0.
  virtual std::uint64_t topology_epoch() const { return 0; }
};

enum class PlacementPolicy : std::uint8_t {
  kFastestFit,   // paper default: fastest tier with room, bypass when full
  kSlowestOnly,  // everything on the last tier (the "no hierarchy" baseline)
  kRoundRobin,   // stripe objects across tiers (ablation)
};

/// Retry-with-backoff knobs for reads against failure-prone tiers. Backoff is
/// charged to the simulated clock (sim_seconds), keeping runs deterministic.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;     // per copy (primary, then replica)
  double backoff_seconds = 1e-3;      // sim-clock delay before the 1st retry
  double backoff_multiplier = 2.0;    // exponential growth per retry
};

class StorageHierarchy {
 public:
  /// Builds a hierarchy from fastest to slowest.
  explicit StorageHierarchy(std::vector<TierSpec> specs,
                            PlacementPolicy policy = PlacementPolicy::kFastestFit);

  // Movable so factories can return by value; the mutex is not part of the
  // logical state (each instance gets a fresh one). Moving a hierarchy that
  // other threads are operating on is a caller bug, exactly as destroying
  // one would be.
  StorageHierarchy(StorageHierarchy&& o) noexcept
      : tiers_(std::move(o.tiers_)),
        policy_(o.policy_),
        faults_(std::move(o.faults_)),
        retry_(o.retry_),
        cache_(std::move(o.cache_)),
        remote_(o.remote_),
        access_listener_(std::move(o.access_listener_)),
        move_listener_(std::move(o.move_listener_)),
        round_robin_next_(o.round_robin_next_),
        access_clock_(o.access_clock_),
        last_access_(std::move(o.last_access_)),
        tier_residency_(std::move(o.tier_residency_)) {}
  StorageHierarchy& operator=(StorageHierarchy&&) = delete;
  StorageHierarchy(const StorageHierarchy&) = delete;
  StorageHierarchy& operator=(const StorageHierarchy&) = delete;

  std::size_t tier_count() const { return tiers_.size(); }
  StorageTier& tier(std::size_t i) { return *tiers_[i]; }
  const StorageTier& tier(std::size_t i) const { return *tiers_[i]; }

  // --- Elastic tier topology (runtime grow/shrink). ------------------------

  /// Inserts a tier at runtime (at `index`, or appended as the new slowest
  /// when omitted) and returns its index. The attached fault injector is
  /// re-bound positionally: FaultProfiles keyed by tier index follow the
  /// *position*, not the tier, after an attach or detach.
  std::size_t attach_tier(TierSpec spec,
                          std::optional<std::size_t> index = std::nullopt);

  /// Drains every object on tier `i` to the fastest remaining tier with
  /// room, then removes the tier; returns the drained keys. Cached entries
  /// stay valid (same key, same bytes). Throws CapacityError when the
  /// remaining tiers cannot absorb the contents — already-drained objects
  /// stay moved. Throws Error when `i` is the only tier.
  std::vector<std::string> detach_tier(std::size_t i);

  /// Restricts placement of keys starting with `prefix` to the named tiers
  /// (a residency set, matched by TierSpec::name so it survives tier
  /// attach/detach). Placement picks the fastest resident tier with room
  /// (kSlowestOnly keeps its meaning within the set); a residency set whose
  /// tiers are all gone falls back to the full stack so keys never become
  /// unplaceable. Pass an empty vector to clear. Longest matching prefix
  /// wins. Affects place()/place_with_replica(); reads and migration are
  /// unrestricted.
  void set_tier_residency(const std::string& prefix,
                          std::vector<std::string> tier_names);

  /// Indices of the tiers the residency set allows for `key` (empty when
  /// unrestricted or when no named tier currently exists).
  std::vector<std::size_t> resident_tiers(const std::string& key) const;

  /// Locked (used, capacity) snapshot of tier `i` — safe to call from a
  /// background maintenance thread while readers and writers are active.
  std::pair<std::size_t, std::size_t> tier_usage(std::size_t i) const;

  /// Index of the tier the policy would choose for an object of this size,
  /// or nullopt when nothing fits.
  std::optional<std::size_t> choose_tier(std::size_t nbytes) const;

  /// Places and writes an object; returns (tier index, io result).
  /// Throws Error when no tier can hold it.
  std::pair<std::size_t, IoResult> place(const std::string& key,
                                         util::BytesView data);

  /// place() plus a best-effort replica on the next tier down (see
  /// replicate_below). The replica's write cost is folded into the returned
  /// IoResult so planning sees the true total I/O.
  std::pair<std::size_t, IoResult> place_with_replica(const std::string& key,
                                                      util::BytesView data);

  /// Best-effort durability: writes a second copy of `data` under the
  /// replica key on the first tier below `primary` with room. Injected write
  /// faults are swallowed (a replica is opportunistic, never load-bearing for
  /// the write path). Returns the replica tier, or nullopt when no lower tier
  /// fits or the write faulted; adds the replica's cost to *io when given.
  std::optional<std::size_t> replicate_below(std::size_t primary,
                                             const std::string& key,
                                             util::BytesView data,
                                             IoResult* io = nullptr);

  /// Tier holding the replica copy of `key`, or nullopt.
  std::optional<std::size_t> replica_tier(const std::string& key) const;

  /// Internal object name of the replica copy of `key`.
  static std::string replica_key(const std::string& key);

  /// Writes to an explicit tier (used when a placement plan is precomputed).
  IoResult write_to(std::size_t tier_index, const std::string& key,
                    util::BytesView data);

  /// Reads an object from whichever tier holds it, retrying per the
  /// RetryPolicy when a tier read fails or fails verification, then falling
  /// back to the replica copy (if one exists) once primary attempts are
  /// exhausted. The returned IoResult carries the retry/corruption counters
  /// and whether the replica served the read; its sim_seconds include the
  /// cost of failed attempts and backoff. Throws TierIoError/IntegrityError
  /// only when every copy is exhausted; always verifies that the bytes
  /// returned match the recorded object size.
  IoResult read(const std::string& key, util::Bytes& out) const;

  /// Batched submission seam for the async I/O engine (src/io): reads every
  /// key as one aggregated submission, returning per-op results in key order.
  /// Semantics per op are identical to read() — same retry/backoff loop,
  /// replica fallback, cache single-flight, remote resolution, and (because
  /// ops execute in key order under one lock acquisition) the same seeded
  /// fault-injector decision stream as the serial loop. Two things differ:
  /// failures are captured per op instead of thrown, and on the direct tier
  /// path consecutive clean reads from one tier within the batch share the
  /// submission round trip — ops after the tier's first pay transfer cost
  /// only (StorageTier::batched_read_cost), modeling one I/O-aggregator
  /// request per storage target. Retried, replica-served, and cache-fronted
  /// ops keep full per-op costs. Local misses are deferred and resolved
  /// through RemoteStore::remote_read_batch after the lock is released (same
  /// lock-ordering rule as read()).
  std::vector<BatchReadResult> read_batch(
      const std::vector<std::string>& keys) const;

  /// Tier currently holding the object, or nullopt.
  std::optional<std::size_t> find(const std::string& key) const;

  void erase(const std::string& key);

  // --- Migration & eviction (Section IV-B: "data migration and eviction
  // will play an integral part"). ----------------------------------------

  /// Moves an object to another tier; returns the read+write cost. No-op
  /// (zero cost) when the object already lives there. Throws when the
  /// object is missing or the target lacks capacity.
  IoResult migrate(const std::string& key, std::size_t to_tier);

  /// Demotes least-recently-used objects from `tier` to slower tiers until
  /// at least `bytes` are free there. Returns the demoted keys in eviction
  /// order. Throws Error when even full demotion cannot free enough space
  /// (e.g. lower tiers are full too).
  std::vector<std::string> make_room(std::size_t tier, std::size_t bytes);

  // --- Robustness (fault injection, retries, replicas). -------------------

  /// Routes every tier's I/O through `faults` (shared so a returned-by-value
  /// hierarchy keeps it alive). Pass nullptr to detach.
  void attach_fault_injector(std::shared_ptr<FaultInjector> faults);
  FaultInjector* fault_injector() const { return faults_.get(); }

  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  // --- Shared block cache (elastic read scaling). --------------------------

  /// Fronts read() with a shared BlockCache: hits are served from memory at
  /// zero simulated cost (IoResult::from_cache), misses are single-flight so
  /// N concurrent readers of the same object trigger one tier fetch. The
  /// cache is shared so many hierarchies/readers can pool one byte budget.
  /// Pass nullptr to detach. Cached bytes were frame-verified by the tier on
  /// the way in; erase() invalidates the object's cache entries (including
  /// its replica and decoded aliases), so stale data is never served.
  void attach_block_cache(std::shared_ptr<cache::BlockCache> cache);
  cache::BlockCache* block_cache() const { return cache_.get(); }

  /// Cache key under which readers store the *decoded* (decompressed) form
  /// of the object named `key`. Kept here so erase() can invalidate decoded
  /// entries without knowing who decoded them.
  static std::string decoded_alias(const std::string& key);

  // --- Cluster fabric (remote resolution of local misses). -----------------

  /// Attaches a resolver consulted by read() when no local tier holds the
  /// key (src/fabric plugs each node's peer-lookup in here). Not owned; must
  /// outlive the hierarchy. Pass nullptr to detach. With a remote store
  /// attached, a read of an unknown key raises whatever the resolver raises
  /// instead of the "not in hierarchy" error.
  void attach_remote_store(RemoteStore* remote);
  RemoteStore* remote_store() const { return remote_; }

  // --- Placement observation hooks (src/tiering plugs in here). ------------

  /// Fires once per read this hierarchy serves locally — cache hits, tier
  /// reads, replica fallbacks — with the object key and payload size. This is
  /// the heat signal for workload-adaptive tiering.
  using AccessListener = std::function<void(const std::string& key,
                                            std::size_t bytes)>;
  /// Fires after any migration — explicit migrate(), make_room() demotions,
  /// detach_tier() drains — so residency observers (predicted-placement maps,
  /// cost planners) can re-stamp instead of going stale.
  using MoveListener = std::function<void(const std::string& key,
                                          std::size_t from_tier,
                                          std::size_t to_tier)>;

  /// Installs the listener (last attach wins; empty function detaches).
  /// Attach before concurrent use, like attach_remote_store: the read path
  /// invokes the listener without re-taking the attachment lock. Listeners
  /// run with the hierarchy mutex held on most paths and must only take leaf
  /// locks (see tiering::HeatTracker) — calling back into the hierarchy from
  /// a listener deadlocks on the non-recursive paths.
  void attach_access_listener(AccessListener listener);
  void attach_move_listener(MoveListener listener);

  /// Locked snapshot of the keys on tier `i`, sorted (replica copies
  /// included). Safe from background maintenance threads; used by heat-aware
  /// eviction to rank victims.
  std::vector<std::string> keys_on_tier(std::size_t i) const;

 private:
  /// choose_tier() narrowed to the key's tier-residency set (when one
  /// matches and names at least one live tier).
  std::optional<std::size_t> choose_tier_for(const std::string& key,
                                             std::size_t nbytes) const;
  std::vector<std::size_t> resident_tiers_locked(const std::string& key) const;
  /// Re-points every tier's fault-injector binding at its current index
  /// (after attach_tier/detach_tier shifted positions).
  void rebind_fault_injector_locked();

  /// The pre-cache read path: placement lookup, retry loop, replica
  /// fallback. read() delegates here on a cache miss (or when no cache is
  /// attached).
  IoResult read_uncached(const std::string& key, util::Bytes& out) const;

  /// The locked local part of read_uncached: retry loop + replica fallback
  /// for a key some tier holds. Caller verified `where` under the same lock.
  IoResult read_local(std::size_t where, const std::string& key,
                      util::Bytes& out) const;

  void touch(const std::string& key) const;
  /// One bounded attempt loop against the copy of `key` on `tier`; folds
  /// failed-attempt costs and counters into `acc`. Returns success; stores the
  /// last failure in `error`.
  bool read_attempts(std::size_t tier, const std::string& key, util::Bytes& out,
                     IoResult& acc, std::exception_ptr& error) const;

  /// Serializes every data-path operation: the progressive reader's
  /// read-ahead and the refactorer's pipelined committer issue hierarchy I/O
  /// from pool workers concurrently with the caller's thread. One lock keeps
  /// tier state, the LRU bookkeeping, and the fault injector's RNG stream
  /// consistent; it is recursive because compound operations
  /// (place_with_replica, make_room) reuse the locked primitives. Simulated
  /// I/O is cheap, so the coarse lock models the one-I/O-aggregator-per-
  /// storage-target regime rather than costing real throughput.
  mutable std::recursive_mutex mu_;
  std::vector<std::unique_ptr<StorageTier>> tiers_;
  PlacementPolicy policy_;
  std::shared_ptr<FaultInjector> faults_;
  RetryPolicy retry_;
  std::shared_ptr<cache::BlockCache> cache_;
  RemoteStore* remote_ = nullptr;  // not owned; see attach_remote_store
  AccessListener access_listener_;  // see attach_access_listener
  MoveListener move_listener_;      // see attach_move_listener
  mutable std::size_t round_robin_next_ = 0;
  // LRU bookkeeping: monotone clock, last-access stamp per key.
  mutable std::uint64_t access_clock_ = 0;
  mutable std::map<std::string, std::uint64_t> last_access_;
  // Tier residency: key prefix -> allowed tier names (longest prefix wins).
  std::map<std::string, std::vector<std::string>> tier_residency_;
};

}  // namespace canopus::storage
