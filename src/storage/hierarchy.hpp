#pragma once
// Multi-tier storage hierarchy with Canopus' placement policy.
//
// Tiers are ordered fastest-first (the pyramid of Fig. 1). Placement walks
// the stack top-down and puts each object on the fastest tier that still has
// room — a tier without sufficient capacity is bypassed and the next one
// selected, exactly as Section III-D describes. The hierarchy remembers
// which tier holds each object so retrieval is a single lookup.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/tier.hpp"

namespace canopus::storage {

enum class PlacementPolicy : std::uint8_t {
  kFastestFit,   // paper default: fastest tier with room, bypass when full
  kSlowestOnly,  // everything on the last tier (the "no hierarchy" baseline)
  kRoundRobin,   // stripe objects across tiers (ablation)
};

class StorageHierarchy {
 public:
  /// Builds a hierarchy from fastest to slowest.
  explicit StorageHierarchy(std::vector<TierSpec> specs,
                            PlacementPolicy policy = PlacementPolicy::kFastestFit);

  std::size_t tier_count() const { return tiers_.size(); }
  StorageTier& tier(std::size_t i) { return *tiers_[i]; }
  const StorageTier& tier(std::size_t i) const { return *tiers_[i]; }

  /// Index of the tier the policy would choose for an object of this size,
  /// or nullopt when nothing fits.
  std::optional<std::size_t> choose_tier(std::size_t nbytes) const;

  /// Places and writes an object; returns (tier index, io result).
  /// Throws Error when no tier can hold it.
  std::pair<std::size_t, IoResult> place(const std::string& key,
                                         util::BytesView data);

  /// Writes to an explicit tier (used when a placement plan is precomputed).
  IoResult write_to(std::size_t tier_index, const std::string& key,
                    util::BytesView data);

  /// Reads an object from whichever tier holds it.
  IoResult read(const std::string& key, util::Bytes& out) const;

  /// Tier currently holding the object, or nullopt.
  std::optional<std::size_t> find(const std::string& key) const;

  void erase(const std::string& key);

  // --- Migration & eviction (Section IV-B: "data migration and eviction
  // will play an integral part"). ----------------------------------------

  /// Moves an object to another tier; returns the read+write cost. No-op
  /// (zero cost) when the object already lives there. Throws when the
  /// object is missing or the target lacks capacity.
  IoResult migrate(const std::string& key, std::size_t to_tier);

  /// Demotes least-recently-used objects from `tier` to slower tiers until
  /// at least `bytes` are free there. Returns the demoted keys in eviction
  /// order. Throws Error when even full demotion cannot free enough space
  /// (e.g. lower tiers are full too).
  std::vector<std::string> make_room(std::size_t tier, std::size_t bytes);

 private:
  void touch(const std::string& key) const;

  std::vector<std::unique_ptr<StorageTier>> tiers_;
  PlacementPolicy policy_;
  mutable std::size_t round_robin_next_ = 0;
  // LRU bookkeeping: monotone clock, last-access stamp per key.
  mutable std::uint64_t access_clock_ = 0;
  mutable std::map<std::string, std::uint64_t> last_access_;
};

}  // namespace canopus::storage
