#include "storage/aggregation.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace canopus::storage {

double aggregate_write_seconds(const AggregationModel& model,
                               const TierSpec& tier, std::size_t total_bytes) {
  CANOPUS_CHECK(model.writers >= 1 && model.aggregators >= 1 &&
                    model.storage_targets >= 1,
                "aggregation model counts must be >= 1");
  CANOPUS_CHECK(model.aggregators <= model.writers,
                "cannot have more aggregators than writers");
  const double total = static_cast<double>(total_bytes);
  const double a = static_cast<double>(model.aggregators);

  // Gather: each aggregator's inbound link carries total/A bytes; each of
  // the ~P/A senders pays one message latency (they overlap across
  // aggregators but serialize per link).
  const double senders_per_agg =
      static_cast<double>(model.writers) / a;
  const double gather = senders_per_agg * model.interconnect_latency +
                        (total / a) / model.interconnect_bandwidth;

  // Flush: min(A, T) concurrent streams; extra aggregators contend.
  const double streams =
      static_cast<double>(std::min(model.aggregators, model.storage_targets));
  const double excess =
      a > streams ? (a - streams) * model.contention_penalty : 0.0;
  const double effective_bw = tier.write_bandwidth * streams / (1.0 + excess);
  const double flush = tier.write_latency * (a / streams) +
                       total / effective_bw;
  return gather + flush;
}

std::size_t best_aggregator_count(AggregationModel model, const TierSpec& tier,
                                  std::size_t total_bytes) {
  std::size_t best = 1;
  double best_time = 1e300;
  for (std::size_t a = 1; a <= model.writers; a *= 2) {
    model.aggregators = a;
    const double t = aggregate_write_seconds(model, tier, total_bytes);
    if (t < best_time) {
      best_time = t;
      best = a;
    }
  }
  return best;
}

}  // namespace canopus::storage
