#include "storage/tier.hpp"

#include <filesystem>
#include <fstream>

#include "obs/metrics.hpp"
#include "storage/blob_frame.hpp"
#include "storage/fault.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace canopus::storage {

namespace fs = std::filesystem;

namespace {
/// Per-tier counter, e.g. count_for("lustre", "reads") -> "storage.lustre.reads".
/// Callers guard with obs::enabled() so the name concatenation and registry
/// lookup cost nothing when observability is off.
obs::Counter& count_for(const std::string& tier, const char* what) {
  return obs::MetricsRegistry::global().counter("storage." + tier + "." + what);
}
}  // namespace

StorageTier::StorageTier(TierSpec spec) : spec_(std::move(spec)) {
  CANOPUS_CHECK(spec_.read_bandwidth > 0 && spec_.write_bandwidth > 0,
                "tier bandwidth must be positive");
  if (spec_.backend == Backend::kFile) {
    CANOPUS_CHECK(!spec_.root_dir.empty(), "file tier needs root_dir");
    fs::create_directories(spec_.root_dir);
  }
}

void StorageTier::set_fault_injector(FaultInjector* injector,
                                     std::size_t tier_index) {
  faults_ = injector;
  fault_index_ = tier_index;
}

std::string StorageTier::path_for(const std::string& key) const {
  std::string sanitized = key;
  for (char& c : sanitized) {
    if (c == '/' || c == '\\') c = '_';
  }
  return (fs::path(spec_.root_dir) / sanitized).string();
}

IoResult StorageTier::write(const std::string& key, util::BytesView data) {
  const std::size_t existing = contains(key) ? object_size(key) : 0;
  CANOPUS_CHECK(used_ - existing + data.size() <= spec_.capacity_bytes,
                "tier '" + spec_.name + "' over capacity");
  double extra_seconds = 0.0;
  if (faults_) {
    const auto d = faults_->on_write(fault_index_);
    if (d.fail) {
      if (obs::enabled()) count_for(spec_.name, "injected_write_faults").add(1);
      throw TierIoError("injected write failure on tier '" + spec_.name +
                        "' for '" + key + "'");
    }
    extra_seconds = d.extra_seconds;
  }
  if (obs::enabled()) {
    count_for(spec_.name, "writes").add(1);
    count_for(spec_.name, "write_bytes").add(data.size());
  }
  util::WallTimer timer;
  const util::Bytes framed = frame_blob(data);
  if (spec_.backend == Backend::kMemory) {
    memory_[key] = framed;
  } else {
    std::ofstream f(path_for(key), std::ios::binary | std::ios::trunc);
    CANOPUS_CHECK(f.good(), "cannot open " + path_for(key));
    f.write(reinterpret_cast<const char*>(framed.data()),
            static_cast<std::streamsize>(framed.size()));
    CANOPUS_CHECK(f.good(), "write failed: " + path_for(key));
  }
  payload_sizes_[key] = data.size();
  used_ = used_ - existing + data.size();
  return IoResult{write_cost(data.size()) + extra_seconds, timer.seconds(),
                  data.size()};
}

IoResult StorageTier::read(const std::string& key, util::Bytes& out) const {
  util::WallTimer timer;
  const auto size_it = payload_sizes_.find(key);
  CANOPUS_CHECK(size_it != payload_sizes_.end(),
                "object '" + key + "' not on tier '" + spec_.name + "'");
  util::Bytes framed;
  if (spec_.backend == Backend::kMemory) {
    framed = memory_.at(key);
  } else {
    std::ifstream f(path_for(key), std::ios::binary);
    CANOPUS_CHECK(f.good(), "cannot open " + path_for(key));
    framed.resize(framed_size(size_it->second));
    f.read(reinterpret_cast<char*>(framed.data()),
           static_cast<std::streamsize>(framed.size()));
    CANOPUS_CHECK(f.good(), "read failed: " + path_for(key));
  }
  double extra_seconds = 0.0;
  if (faults_) {
    const auto d = faults_->on_read(fault_index_);
    if (d.fail) {
      if (obs::enabled()) count_for(spec_.name, "injected_read_faults").add(1);
      throw TierIoError("injected read failure on tier '" + spec_.name +
                        "' for '" + key + "'");
    }
    if (d.corrupt && !framed.empty()) {
      if (obs::enabled()) count_for(spec_.name, "injected_corruptions").add(1);
      const std::uint64_t bit = d.corrupt_bit % (framed.size() * 8);
      framed[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    }
    extra_seconds = d.extra_seconds;
  }
  out = unframe_blob(framed);  // throws IntegrityError on corruption
  const double sim_seconds = read_cost(out.size()) + extra_seconds;
  if (obs::enabled()) {
    count_for(spec_.name, "reads").add(1);
    count_for(spec_.name, "read_bytes").add(out.size());
    // Observed per-read latency (simulated clock, microseconds). Injected
    // latency spikes land here too, which is the point: the serve-layer cost
    // model compares this histogram against the analytic envelope to learn
    // how much slower the tier currently runs than its spec promises
    // (serve/cost_model.hpp, Calibration::tier_factor).
    obs::MetricsRegistry::global()
        .histogram("storage." + spec_.name + ".read_us")
        .observe(sim_seconds * 1e6);
  }
  return IoResult{sim_seconds, timer.seconds(), out.size()};
}

bool StorageTier::contains(const std::string& key) const {
  return payload_sizes_.count(key) > 0;
}

std::size_t StorageTier::object_size(const std::string& key) const {
  auto it = payload_sizes_.find(key);
  CANOPUS_CHECK(it != payload_sizes_.end(), "object '" + key + "' not found");
  return it->second;
}

std::vector<std::string> StorageTier::keys() const {
  std::vector<std::string> out;
  out.reserve(payload_sizes_.size());
  for (const auto& [key, size] : payload_sizes_) {
    (void)size;
    out.push_back(key);
  }
  return out;
}

void StorageTier::erase(const std::string& key) {
  if (!contains(key)) return;
  used_ -= object_size(key);
  if (spec_.backend == Backend::kMemory) {
    memory_.erase(key);
  } else {
    fs::remove(path_for(key));
  }
  payload_sizes_.erase(key);
}

// Preset envelopes. Bandwidths/latencies are order-of-magnitude figures for
// the technologies the paper names (Section I / Figure 2); the benches only
// rely on the *relative* gaps between tiers.
TierSpec tmpfs_spec(std::size_t capacity_bytes) {
  return TierSpec{"tmpfs", capacity_bytes, 8e9, 6e9, 2e-6, 2e-6,
                  Backend::kMemory, ""};
}
TierSpec nvram_spec(std::size_t capacity_bytes) {
  return TierSpec{"nvram", capacity_bytes, 5e9, 2e9, 1e-5, 3e-5,
                  Backend::kMemory, ""};
}
TierSpec ssd_spec(std::size_t capacity_bytes) {
  return TierSpec{"ssd", capacity_bytes, 2e9, 1e9, 1e-4, 1e-4,
                  Backend::kMemory, ""};
}
TierSpec burst_buffer_spec(std::size_t capacity_bytes) {
  return TierSpec{"burst-buffer", capacity_bytes, 1.5e9, 1.2e9, 5e-4, 5e-4,
                  Backend::kMemory, ""};
}
TierSpec lustre_spec(std::size_t capacity_bytes) {
  // Per-client Lustre stream: high latency, modest bandwidth.
  return TierSpec{"lustre", capacity_bytes, 3e8, 2.5e8, 5e-3, 8e-3,
                  Backend::kMemory, ""};
}
TierSpec campaign_spec(std::size_t capacity_bytes) {
  return TierSpec{"campaign", capacity_bytes, 5e7, 4e7, 5e-2, 8e-2,
                  Backend::kMemory, ""};
}

}  // namespace canopus::storage
