#pragma once
// Framed-blob format: every object a StorageTier persists is wrapped in a
// small integrity frame so corrupt bytes coming back from a failing tier are
// detected at the I/O boundary instead of propagating into decompression.
//
// Layout (little-endian, 16-byte header):
//
//   u32 magic    "CFR1" (0x31524643)
//   u64 length   payload bytes
//   u32 crc32    CRC-32 (IEEE) of the payload
//   ...payload...
//
// Framing is transparent: tiers frame on write and verify+strip on read, and
// all capacity accounting stays in *payload* bytes so the cost model and the
// placement decisions are unchanged by the 16-byte physical overhead.

#include <cstddef>
#include <cstdint>

#include "util/assert.hpp"
#include "util/byte_buffer.hpp"

namespace canopus::storage {

/// Thrown when a stored blob fails verification (bad magic, inconsistent
/// length, or CRC mismatch) — i.e. the bytes that came back are not the bytes
/// that were written. Distinct from TierIoError so callers can count
/// corruption separately from plain I/O failures.
class IntegrityError : public Error {
 public:
  explicit IntegrityError(const std::string& what) : Error(what) {}
};

inline constexpr std::uint32_t kFrameMagic = 0x31524643u;  // "CFR1"
inline constexpr std::size_t kFrameOverhead = 16;          // magic+length+crc

/// Physical size of the frame holding `payload_bytes` of payload.
constexpr std::size_t framed_size(std::size_t payload_bytes) {
  return payload_bytes + kFrameOverhead;
}

/// Wraps a payload in an integrity frame.
util::Bytes frame_blob(util::BytesView payload);

/// Verifies a frame and returns the payload; throws IntegrityError when the
/// magic, length, or checksum does not match.
util::Bytes unframe_blob(util::BytesView frame);

}  // namespace canopus::storage
