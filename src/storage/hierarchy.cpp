#include "storage/hierarchy.hpp"

#include <algorithm>
#include <exception>

#include "obs/metrics.hpp"
#include "storage/blob_frame.hpp"
#include "util/assert.hpp"

namespace canopus::storage {

StorageHierarchy::StorageHierarchy(std::vector<TierSpec> specs,
                                   PlacementPolicy policy)
    : policy_(policy) {
  CANOPUS_CHECK(!specs.empty(), "hierarchy needs at least one tier");
  tiers_.reserve(specs.size());
  for (auto& s : specs) {
    tiers_.push_back(std::make_unique<StorageTier>(std::move(s)));
  }
}

std::optional<std::size_t> StorageHierarchy::choose_tier(std::size_t nbytes) const {
  std::scoped_lock lock(mu_);
  switch (policy_) {
    case PlacementPolicy::kFastestFit:
      for (std::size_t i = 0; i < tiers_.size(); ++i) {
        if (tiers_[i]->fits(nbytes)) return i;
      }
      return std::nullopt;
    case PlacementPolicy::kSlowestOnly:
      return tiers_.back()->fits(nbytes)
                 ? std::optional<std::size_t>(tiers_.size() - 1)
                 : std::nullopt;
    case PlacementPolicy::kRoundRobin: {
      for (std::size_t probe = 0; probe < tiers_.size(); ++probe) {
        const std::size_t i = (round_robin_next_ + probe) % tiers_.size();
        if (tiers_[i]->fits(nbytes)) {
          round_robin_next_ = (i + 1) % tiers_.size();
          return i;
        }
      }
      return std::nullopt;
    }
  }
  CANOPUS_UNREACHABLE("unknown placement policy");
}

std::pair<std::size_t, IoResult> StorageHierarchy::place(const std::string& key,
                                                         util::BytesView data) {
  std::scoped_lock lock(mu_);
  erase(key);  // replacing an object must not leak capacity on another tier
  const auto choice = choose_tier_for(key, data.size());
  if (!choice.has_value()) {
    throw CapacityError("no tier can hold '" + key + "' (" +
                        std::to_string(data.size()) + " bytes)");
  }
  touch(key);
  return {*choice, tiers_[*choice]->write(key, data)};
}

IoResult StorageHierarchy::write_to(std::size_t tier_index, const std::string& key,
                                    util::BytesView data) {
  std::scoped_lock lock(mu_);
  CANOPUS_ASSERT(tier_index < tiers_.size());
  erase(key);
  touch(key);
  return tiers_[tier_index]->write(key, data);
}

std::vector<std::size_t> StorageHierarchy::resident_tiers_locked(
    const std::string& key) const {
  if (tier_residency_.empty()) return {};
  const std::vector<std::string>* names = nullptr;
  std::size_t best_len = 0;
  for (const auto& [prefix, allowed] : tier_residency_) {
    if (prefix.size() >= best_len && key.size() >= prefix.size() &&
        key.compare(0, prefix.size(), prefix) == 0) {
      names = &allowed;
      best_len = prefix.size();
    }
  }
  if (names == nullptr) return {};
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    for (const auto& name : *names) {
      if (tiers_[i]->spec().name == name) {
        indices.push_back(i);
        break;
      }
    }
  }
  return indices;  // empty when every named tier is gone: unrestricted
}

std::vector<std::size_t> StorageHierarchy::resident_tiers(
    const std::string& key) const {
  std::scoped_lock lock(mu_);
  return resident_tiers_locked(key);
}

std::optional<std::size_t> StorageHierarchy::choose_tier_for(
    const std::string& key, std::size_t nbytes) const {
  std::scoped_lock lock(mu_);
  const auto allowed = resident_tiers_locked(key);
  if (allowed.empty()) return choose_tier(nbytes);
  if (policy_ == PlacementPolicy::kSlowestOnly) {
    return tiers_[allowed.back()]->fits(nbytes)
               ? std::optional<std::size_t>(allowed.back())
               : std::nullopt;
  }
  // Fastest resident tier with room (round-robin striping is not meaningful
  // inside an explicit residency set).
  for (const std::size_t i : allowed) {
    if (tiers_[i]->fits(nbytes)) return i;
  }
  return std::nullopt;
}

void StorageHierarchy::set_tier_residency(const std::string& prefix,
                                          std::vector<std::string> tier_names) {
  std::scoped_lock lock(mu_);
  if (tier_names.empty()) {
    tier_residency_.erase(prefix);
  } else {
    tier_residency_[prefix] = std::move(tier_names);
  }
}

void StorageHierarchy::rebind_fault_injector_locked() {
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    tiers_[i]->set_fault_injector(faults_.get(), i);
  }
}

std::size_t StorageHierarchy::attach_tier(TierSpec spec,
                                          std::optional<std::size_t> index) {
  std::scoped_lock lock(mu_);
  const std::size_t at =
      index.has_value() ? std::min(*index, tiers_.size()) : tiers_.size();
  tiers_.insert(tiers_.begin() + static_cast<std::ptrdiff_t>(at),
                std::make_unique<StorageTier>(std::move(spec)));
  rebind_fault_injector_locked();
  return at;
}

std::vector<std::string> StorageHierarchy::detach_tier(std::size_t i) {
  std::scoped_lock lock(mu_);
  CANOPUS_CHECK(i < tiers_.size(), "detach_tier: index out of range");
  CANOPUS_CHECK(tiers_.size() > 1, "detach_tier: cannot remove the only tier");
  const auto drained = tiers_[i]->keys();
  util::Bytes data;
  for (const auto& key : drained) {
    tiers_[i]->read(key, data);
    bool placed = false;
    for (std::size_t t = 0; t < tiers_.size(); ++t) {
      if (t == i || !tiers_[t]->fits(data.size())) continue;
      tiers_[t]->write(key, data);
      // Note the reported index is pre-removal; positions above `i` shift
      // down when the tier goes away (observers range-check, per the header).
      if (move_listener_) move_listener_(key, i, t);
      placed = true;
      break;
    }
    if (!placed) {
      throw CapacityError("detach_tier: remaining tiers cannot absorb '" +
                          key + "' (" + std::to_string(data.size()) +
                          " bytes) from tier '" + tiers_[i]->spec().name + "'");
    }
    tiers_[i]->erase(key);
    touch(key);
  }
  tiers_.erase(tiers_.begin() + static_cast<std::ptrdiff_t>(i));
  if (round_robin_next_ >= tiers_.size()) round_robin_next_ = 0;
  rebind_fault_injector_locked();
  return drained;
}

std::pair<std::size_t, IoResult> StorageHierarchy::place_with_replica(
    const std::string& key, util::BytesView data) {
  std::scoped_lock lock(mu_);
  auto [primary, io] = place(key, data);
  replicate_below(primary, key, data, &io);
  return {primary, io};
}

std::optional<std::size_t> StorageHierarchy::replicate_below(
    std::size_t primary, const std::string& key, util::BytesView data,
    IoResult* io) {
  std::scoped_lock lock(mu_);
  CANOPUS_ASSERT(primary < tiers_.size());
  const auto rkey = replica_key(key);
  for (std::size_t t = primary + 1; t < tiers_.size(); ++t) {
    if (!tiers_[t]->fits(data.size())) continue;
    try {
      const auto rio = tiers_[t]->write(rkey, data);
      if (io) {
        io->sim_seconds += rio.sim_seconds;
        io->wall_seconds += rio.wall_seconds;
      }
      return t;
    } catch (const TierIoError&) {
      // Replica writes are opportunistic: an injected failure leaves the
      // object unreplicated rather than failing the caller's write.
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> StorageHierarchy::replica_tier(
    const std::string& key) const {
  return find(replica_key(key));
}

std::string StorageHierarchy::replica_key(const std::string& key) {
  return key + "#replica";
}

bool StorageHierarchy::read_attempts(std::size_t tier, const std::string& key,
                                     util::Bytes& out, IoResult& acc,
                                     std::exception_ptr& error) const {
  double backoff = retry_.backoff_seconds;
  const std::uint32_t attempts = std::max<std::uint32_t>(1, retry_.max_attempts);
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    try {
      const auto io = tiers_[tier]->read(key, out);
      acc.sim_seconds += io.sim_seconds;
      acc.wall_seconds += io.wall_seconds;
      acc.bytes = io.bytes;
      return true;
    } catch (const IntegrityError&) {
      ++acc.corruptions;
      error = std::current_exception();
    } catch (const TierIoError&) {
      error = std::current_exception();
    }
    ++acc.retries;
    // A failed attempt still pays the transfer, plus the backoff delay on the
    // simulated clock (wall time stays honest: nothing actually slept).
    acc.sim_seconds +=
        tiers_[tier]->read_cost(tiers_[tier]->object_size(key)) + backoff;
    backoff *= retry_.backoff_multiplier;
  }
  return false;
}

IoResult StorageHierarchy::read(const std::string& key, util::Bytes& out) const {
  if (!cache_) return read_uncached(key, out);
  // Cache-fronted path. Deliberately does NOT hold mu_ here: waiters block
  // on the single-flight condition variable while the leader's loader takes
  // mu_ inside read_uncached, so holding mu_ across the cache call would
  // deadlock (and serialize all cached reads besides).
  IoResult leader_io;
  const auto result = cache_->get_or_load_blob(key, [&] {
    util::Bytes bytes;
    leader_io = read_uncached(key, bytes);
    return bytes;
  });
  out.assign(result.blob->begin(), result.blob->end());
  // The single-flight leader pays the true tier cost; hits and piggybacked
  // waiters are served from memory at zero simulated cost.
  if (result.source == cache::BlockCache::Source::kLoaded) return leader_io;
  // A cache hit is a local serve: the bytes never left this node, whichever
  // node originally faulted them in.
  if (remote_ != nullptr) remote_->note_local_hit(key);
  if (access_listener_) access_listener_(key, out.size());
  IoResult io;
  io.bytes = out.size();
  io.from_cache = true;
  return io;
}

std::vector<BatchReadResult> StorageHierarchy::read_batch(
    const std::vector<std::string>& keys) const {
  std::vector<BatchReadResult> out(keys.size());
  if (cache_) {
    // Cache-fronted ops keep the per-key single-flight protocol (hits free,
    // one leader per miss); batching them under mu_ would deadlock against
    // the cache's condition variable exactly as documented in read().
    for (std::size_t i = 0; i < keys.size(); ++i) {
      try {
        out[i].io = read(keys[i], out[i].bytes);
      } catch (...) {
        out[i].error = std::current_exception();
      }
    }
    return out;
  }
  std::vector<std::size_t> misses;
  {
    std::scoped_lock lock(mu_);
    // Round-trip amortization: the first clean read from a tier in this batch
    // pays the full submission latency, later ones on the same tier ride the
    // same aggregated request (transfer cost only). Retries and replica
    // fallbacks break out of the aggregate and keep their full per-attempt
    // costs — a failed request is its own round trip.
    std::vector<bool> latency_paid(tiers_.size(), false);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const auto where = find(keys[i]);
      if (!where.has_value()) {
        if (remote_ != nullptr) {
          misses.push_back(i);
        } else {
          out[i].error = std::make_exception_ptr(
              Error("object '" + keys[i] + "' not in hierarchy"));
        }
        continue;
      }
      try {
        out[i].io = read_local(*where, keys[i], out[i].bytes);
        if (out[i].io.retries == 0 && !out[i].io.from_replica) {
          if (latency_paid[*where]) {
            out[i].io.sim_seconds -= tiers_[*where]->spec().read_latency;
          } else {
            latency_paid[*where] = true;
          }
        }
      } catch (...) {
        out[i].error = std::current_exception();
      }
    }
  }
  if (!misses.empty()) {
    // Remote resolution outside mu_, same deadlock rule as read_uncached().
    std::vector<std::string> remote_keys;
    remote_keys.reserve(misses.size());
    for (const std::size_t i : misses) remote_keys.push_back(keys[i]);
    auto remote_results = remote_->remote_read_batch(remote_keys);
    CANOPUS_ASSERT(remote_results.size() == misses.size());
    for (std::size_t j = 0; j < misses.size(); ++j) {
      out[misses[j]] = std::move(remote_results[j]);
    }
  }
  return out;
}

IoResult StorageHierarchy::read_uncached(const std::string& key,
                                         util::Bytes& out) const {
  {
    std::scoped_lock lock(mu_);
    const auto where = find(key);
    if (where.has_value()) return read_local(*where, key, out);
    CANOPUS_CHECK(remote_ != nullptr, "object '" + key + "' not in hierarchy");
  }
  // Local miss with a remote store attached: resolve across the fabric.
  // Deliberately outside mu_ — the remote owner takes its own hierarchy
  // lock, and two nodes reading from each other must never hold both.
  return remote_->remote_read(key, out);
}

IoResult StorageHierarchy::read_local(std::size_t where, const std::string& key,
                                      util::Bytes& out) const {
  std::scoped_lock lock(mu_);
  touch(key);
  IoResult acc;
  std::exception_ptr error;
  if (read_attempts(where, key, out, acc, error)) {
    if (obs::enabled() && acc.retries > 0) {
      obs::MetricsRegistry::global().counter("hierarchy.retries").add(acc.retries);
    }
    CANOPUS_CHECK(out.size() == tiers_[where]->object_size(key),
                  "short read of '" + key + "': got " +
                      std::to_string(out.size()) + " of " +
                      std::to_string(tiers_[where]->object_size(key)) +
                      " bytes");
    if (remote_ != nullptr) remote_->note_local_hit(key);
    if (access_listener_) access_listener_(key, out.size());
    return acc;
  }
  // Primary copy exhausted its attempts: fall back to the replica, if any.
  const auto rkey = replica_key(key);
  const auto rtier = find(rkey);
  if (rtier.has_value() && read_attempts(*rtier, rkey, out, acc, error)) {
    acc.from_replica = true;
    if (obs::enabled()) {
      auto& registry = obs::MetricsRegistry::global();
      registry.counter("hierarchy.replica_fallbacks").add(1);
      if (acc.retries > 0) registry.counter("hierarchy.retries").add(acc.retries);
    }
    CANOPUS_CHECK(out.size() == tiers_[*rtier]->object_size(rkey),
                  "short read of replica '" + rkey + "'");
    if (remote_ != nullptr) remote_->note_local_hit(key);
    if (access_listener_) access_listener_(key, out.size());
    return acc;
  }
  CANOPUS_ASSERT(error != nullptr);
  std::rethrow_exception(error);
}

std::optional<std::size_t> StorageHierarchy::find(const std::string& key) const {
  std::scoped_lock lock(mu_);
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (tiers_[i]->contains(key)) return i;
  }
  return std::nullopt;
}

void StorageHierarchy::erase(const std::string& key) {
  std::scoped_lock lock(mu_);
  const auto rkey = replica_key(key);
  for (auto& t : tiers_) {
    t->erase(key);
    t->erase(rkey);
  }
  last_access_.erase(key);
  if (cache_) {
    // Lock order is hierarchy mutex -> cache shard mutex (never reversed:
    // cache loaders run outside every cache lock). Invalidation also cancels
    // any in-flight load of these keys, so a reader racing the erase cannot
    // re-admit the stale bytes.
    cache_->invalidate(key);
    cache_->invalidate(rkey);
    cache_->invalidate(decoded_alias(key));
    cache_->invalidate(decoded_alias(rkey));
  }
}

void StorageHierarchy::attach_block_cache(
    std::shared_ptr<cache::BlockCache> cache) {
  std::scoped_lock lock(mu_);
  cache_ = std::move(cache);
}

void StorageHierarchy::attach_remote_store(RemoteStore* remote) {
  std::scoped_lock lock(mu_);
  remote_ = remote;
}

void StorageHierarchy::attach_access_listener(AccessListener listener) {
  std::scoped_lock lock(mu_);
  access_listener_ = std::move(listener);
}

void StorageHierarchy::attach_move_listener(MoveListener listener) {
  std::scoped_lock lock(mu_);
  move_listener_ = std::move(listener);
}

std::vector<std::string> StorageHierarchy::keys_on_tier(std::size_t i) const {
  std::scoped_lock lock(mu_);
  CANOPUS_ASSERT(i < tiers_.size());
  return tiers_[i]->keys();
}

std::pair<std::size_t, std::size_t> StorageHierarchy::tier_usage(
    std::size_t i) const {
  std::scoped_lock lock(mu_);
  CANOPUS_ASSERT(i < tiers_.size());
  return {tiers_[i]->used_bytes(), tiers_[i]->spec().capacity_bytes};
}

std::string StorageHierarchy::decoded_alias(const std::string& key) {
  return key + "#decoded";
}

void StorageHierarchy::attach_fault_injector(
    std::shared_ptr<FaultInjector> faults) {
  std::scoped_lock lock(mu_);
  faults_ = std::move(faults);
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    tiers_[i]->set_fault_injector(faults_.get(), i);
  }
}

void StorageHierarchy::touch(const std::string& key) const {
  last_access_[key] = ++access_clock_;
}

IoResult StorageHierarchy::migrate(const std::string& key, std::size_t to_tier) {
  std::scoped_lock lock(mu_);
  CANOPUS_ASSERT(to_tier < tiers_.size());
  const auto from = find(key);
  CANOPUS_CHECK(from.has_value(), "migrate: object '" + key + "' not found");
  if (*from == to_tier) return IoResult{};
  util::Bytes data;
  const auto read_io = tiers_[*from]->read(key, data);
  const auto write_io = tiers_[to_tier]->write(key, data);
  tiers_[*from]->erase(key);
  touch(key);
  // Cached copies of the blob stay valid — the bytes are tier-independent —
  // but residency observers must re-stamp, or planned costs go stale against
  // the new placement (the move listener is that re-stamp hook).
  if (move_listener_) move_listener_(key, *from, to_tier);
  return IoResult{read_io.sim_seconds + write_io.sim_seconds,
                  read_io.wall_seconds + write_io.wall_seconds, data.size()};
}

std::vector<std::string> StorageHierarchy::make_room(std::size_t tier,
                                                     std::size_t bytes) {
  std::scoped_lock lock(mu_);
  CANOPUS_ASSERT(tier < tiers_.size());
  std::vector<std::string> evicted;
  while (tiers_[tier]->free_bytes() < bytes) {
    // Pick the least-recently-used object on this tier (objects never read
    // or written through the tracked paths count as oldest).
    std::string victim;
    std::uint64_t victim_stamp = ~std::uint64_t{0};
    for (const auto& [key, stamp] : last_access_) {
      if (tiers_[tier]->contains(key) && stamp < victim_stamp) {
        victim = key;
        victim_stamp = stamp;
      }
    }
    if (victim.empty()) {
      // Fall back to any object on the tier (untracked keys).
      // Tiers do not expose iteration; treat as unsatisfiable.
      throw CapacityError("make_room: cannot free " + std::to_string(bytes) +
                          " bytes on tier '" + tiers_[tier]->spec().name + "'");
    }
    // Demote to the first lower tier that fits.
    const std::size_t size = tiers_[tier]->object_size(victim);
    bool moved = false;
    for (std::size_t lower = tier + 1; lower < tiers_.size(); ++lower) {
      if (tiers_[lower]->fits(size)) {
        migrate(victim, lower);
        moved = true;
        break;
      }
    }
    // Same cannot-free-space condition as the empty-victim branch above, so
    // the same typed error: a generic Error here would map to a different
    // Status (kInternal vs kCapacity) at the facade for identical failures.
    if (!moved) {
      throw CapacityError("make_room: no lower tier can absorb '" + victim +
                          "'");
    }
    evicted.push_back(victim);
  }
  return evicted;
}

}  // namespace canopus::storage
