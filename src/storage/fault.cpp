#include "storage/fault.hpp"

namespace canopus::storage {

namespace {
const FaultProfile kInertProfile{};

void check_probability(double p, const char* name) {
  CANOPUS_CHECK(p >= 0.0 && p <= 1.0,
                std::string("fault probability '") + name +
                    "' must be in [0, 1]");
}
}  // namespace

void FaultInjector::set_profile(std::size_t tier, const FaultProfile& profile) {
  check_probability(profile.read_error, "read_error");
  check_probability(profile.write_error, "write_error");
  check_probability(profile.corrupt, "corrupt");
  check_probability(profile.latency_spike, "latency_spike");
  CANOPUS_CHECK(profile.spike_seconds >= 0.0, "spike_seconds must be >= 0");
  if (tier >= profiles_.size()) profiles_.resize(tier + 1);
  profiles_[tier] = profile;
}

const FaultProfile& FaultInjector::profile(std::size_t tier) const {
  return tier < profiles_.size() ? profiles_[tier] : kInertProfile;
}

FaultDecision FaultInjector::on_read(std::size_t tier) {
  const auto& p = profile(tier);
  FaultDecision d;
  if (!p.active()) return d;
  // Fixed-shape draw: four values per consult, independent of outcomes, so
  // the decision stream is a pure function of (seed, operation sequence).
  const double fail_draw = rng_.uniform();
  const double corrupt_draw = rng_.uniform();
  const double spike_draw = rng_.uniform();
  d.corrupt_bit = rng_.next_u64();
  if (spike_draw < p.latency_spike) {
    d.extra_seconds = p.spike_seconds;
    ++counters_.latency_spikes;
  }
  if (fail_draw < p.read_error) {
    d.fail = true;
    ++counters_.read_errors;
    return d;
  }
  if (corrupt_draw < p.corrupt) {
    d.corrupt = true;
    ++counters_.corruptions;
  }
  return d;
}

FaultDecision FaultInjector::on_write(std::size_t tier) {
  const auto& p = profile(tier);
  FaultDecision d;
  if (!p.active()) return d;
  const double fail_draw = rng_.uniform();
  const double spike_draw = rng_.uniform();
  if (spike_draw < p.latency_spike) {
    d.extra_seconds = p.spike_seconds;
    ++counters_.latency_spikes;
  }
  if (fail_draw < p.write_error) {
    d.fail = true;
    ++counters_.write_errors;
  }
  return d;
}

}  // namespace canopus::storage
